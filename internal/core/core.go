// Package core implements the paper's predictive, adaptive bandwidth
// reservation and admission control (§4): per-cell target reservation
// bandwidth B_r computed from neighbors' mobility estimates (Eqs. 4–6),
// the adaptive T_est window controller (Fig. 6), and the AC1/AC2/AC3
// admission-control schemes plus the static-reservation and
// no-reservation baselines (§4.3, Table 1).
//
// One Engine manages the QoS state of one cell. Engines reach their
// neighbors only through the Peers interface, so the same logic runs
// whether cells are wired directly in memory (internal/cellnet) or
// communicate across a network (internal/signaling).
package core

import (
	"fmt"
	"math"
	"sync"

	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// Policy selects the admission-control scheme (paper Table 1).
type Policy int

const (
	// AC1 checks only the current cell: admit iff
	// B_u + b_new ≤ C − B_r, with B_r freshly computed.
	AC1 Policy = iota
	// AC2 additionally requires every adjacent cell to recompute its own
	// B_r and have room to reserve it fully.
	AC2
	// AC3 is the hybrid: only adjacent cells that appear unable to
	// reserve their previous target (B_u,i + B_r,i^prev > C_i) recompute
	// and participate.
	AC3
	// Static reserves a fixed G BUs permanently (the mid-80s guard-
	// channel baseline the paper compares against).
	Static
	// None performs no reservation at all: admit iff B_u + b_new ≤ C.
	None
	// MobSpec is a Talukdar/Badrinath/Acharya-style baseline (the paper's
	// §6, ref. [14]): each admitted connection pledges its bandwidth in
	// every cell of its declared mobility specification for its whole
	// lifetime, so its hand-offs can never be dropped inside the spec.
	// The paper criticizes the approach as "usually excessive"; the
	// pledge fan-out is orchestrated by the network layer (the engine
	// contributes the per-cell pledge pool and the admission arithmetic).
	MobSpec
	// ExpDwell is a Naghshineh–Schwartz-style baseline (the paper's §6,
	// ref. [10]): it reserves for expected hand-offs like AC1 but models
	// mobility analytically instead of from history — every connection's
	// remaining dwell is assumed exponential with mean ExpDwellMean, and
	// its direction uniform over the cell's neighbors, over a fixed
	// estimation window ExpDwellWindow. The paper criticizes exactly
	// these assumptions (§6): no direction prediction, impractical
	// exponential sojourns, and no adaptation.
	ExpDwell
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case AC1:
		return "AC1"
	case AC2:
		return "AC2"
	case AC3:
		return "AC3"
	case Static:
		return "static"
	case None:
		return "none"
	case MobSpec:
		return "mob-spec"
	case ExpDwell:
		return "exp-dwell"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Adaptive reports whether the policy runs the predictive reservation
// machinery (estimator + T_est controller).
//
// Deprecated: ask the policy itself — Traits().Adaptive on the value
// from PolicyByName / Config.Admission; the enum survives only as a
// config shim for one release.
func (p Policy) Adaptive() bool { return p == AC1 || p == AC2 || p == AC3 }

// ConnID identifies a connection within the whole system.
type ConnID uint64

// NoHint marks a connection without path/direction information.
const NoHint topology.LocalIndex = -1

// conn is the engine's per-connection QoS record. Rigid connections
// have min == max == bw; adaptive-QoS connections (§1, refs [6,8]) may
// be downgraded toward min to absorb hand-offs and upgraded back when
// bandwidth frees.
type conn struct {
	id        ConnID
	bw        int // currently granted bandwidth
	min, max  int
	prev      topology.LocalIndex // where the mobile came from (Self = born here)
	enteredAt float64
	hint      topology.LocalIndex // known next cell (ITS/GPS, §7), or NoHint
	class     ServiceClass        // service class (0 = highest priority)
}

// Config parameterizes an Engine.
type Config struct {
	// Capacity is the cell's wireless link capacity C(i) in BUs
	// (paper A6: 100).
	Capacity int
	// Degree is the number of adjacent cells.
	Degree int
	// Policy is the legacy admission-control selector; it is consulted
	// only when Admission is nil.
	Policy Policy
	// Admission is the admission-control scheme as a first-class
	// implementation (PolicyByName, or a custom AdmissionPolicy). When
	// nil, the legacy Policy enum value selects the scheme.
	Admission AdmissionPolicy
	// StaticReserve is G, the permanent reservation of the Static policy.
	StaticReserve int
	// PHDTarget is P_HD,target (paper: 0.01). Used by adaptive policies.
	PHDTarget float64
	// TStart is the initial T_est in seconds (paper: 1).
	TStart float64
	// Step is the T_est adjustment policy (paper: UnitStep).
	Step StepPolicy
	// Estimation configures the hand-off estimation functions.
	Estimation predict.Config
	// Calendar routes quadruplets to weekday/weekend pattern sets; nil
	// means a single weekday pattern.
	Calendar predict.Calendar
	// HandOffMargin models CDMA soft capacity (§7): hand-offs may intrude
	// up to Capacity+HandOffMargin BUs (spending interference budget),
	// while new connections still respect Capacity − B_r. Zero for the
	// paper's FCA experiments.
	HandOffMargin int
	// ExpDwellMean is the assumed mean cell-dwell time τ in seconds for
	// the ExpDwell baseline.
	ExpDwellMean float64
	// ExpDwellWindow is the ExpDwell baseline's fixed estimation window
	// T in seconds (that scheme has no adaptive T_est).
	ExpDwellWindow float64
	// Fallback is the degradation policy for unreachable neighbors: what
	// an unreachable neighbor contributes to B_r (Eq. 6) instead of
	// silently dropping to zero. The zero value decays the last-known
	// contribution with the default time constant.
	Fallback Fallback
	// Lock, when non-nil, guards the engine's local state for concurrent
	// deployments (internal/signaling): the engine acquires it around
	// every local-state access but never across Peers calls, so a
	// neighbor's query that arrives while this engine waits on a remote
	// fan-out cannot deadlock. Leave nil for single-threaded use
	// (internal/cellnet) — there is then zero locking overhead.
	Lock sync.Locker
}

// Validate checks config invariants.
func (c Config) Validate() error {
	pol := ResolvePolicy(c.Admission, c.Policy)
	if pol == nil {
		return fmt.Errorf("core: unknown policy %v", c.Policy)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("core: capacity must be positive, got %d", c.Capacity)
	}
	if c.Degree < 1 {
		return fmt.Errorf("core: degree must be ≥ 1, got %d", c.Degree)
	}
	if v, ok := pol.(PolicyValidator); ok {
		if err := v.ValidateConfig(c); err != nil {
			return err
		}
	}
	if pol.Traits().Adaptive {
		if c.PHDTarget <= 0 || c.PHDTarget > 1 {
			return fmt.Errorf("core: PHD target %v outside (0,1]", c.PHDTarget)
		}
		if c.TStart < 1 {
			return fmt.Errorf("core: TStart %v below 1 s", c.TStart)
		}
		if err := c.Estimation.Validate(); err != nil {
			return err
		}
	}
	if c.HandOffMargin < 0 {
		return fmt.Errorf("core: negative hand-off margin %d", c.HandOffMargin)
	}
	if err := c.Fallback.Validate(); err != nil {
		return err
	}
	return nil
}

// Peers gives an Engine access to its adjacent cells. Local indices are
// in this cell's space (1..Degree). Implementations decide how the
// information travels (function calls, MSC star, BS full mesh) and are
// responsible for counting messages.
//
// Every method reports ok=false when the neighbor's state could not be
// fetched — a dead or partitioned link, a timed-out call, an exhausted
// retry budget. The engine then applies its configured Fallback policy
// instead of treating silence as "contributes nothing" / "infinitely
// healthy", and marks the computation degraded. In-process deployments
// (internal/cellnet without fault injection) always return ok=true.
//
// Degraded-value contract: ok=true additionally promises a finite,
// non-negative value. Implementations need not police that themselves —
// the engine passes every float answer through PeerValue, which demotes
// NaN, ±Inf and negative values (e.g. a corrupt frame decoding to a
// sentinel) to ok=false. Both the in-memory (internal/cellnet) and the
// signaling (internal/signaling) implementations are judged by that one
// helper, so their semantics cannot drift.
type Peers interface {
	// OutgoingReservation asks neighbor li to evaluate Eq. 5 toward this
	// cell: the expected bandwidth of its connections that will hand off
	// here within test seconds, at time now.
	OutgoingReservation(li topology.LocalIndex, now, test float64) (res float64, ok bool)
	// Snapshot returns neighbor li's used bandwidth, capacity, and
	// last-computed target reservation B_r^prev without recomputation.
	Snapshot(li topology.LocalIndex) (used, capacity int, lastBr float64, ok bool)
	// RecomputeReservation makes neighbor li recompute its own B_r
	// (updating its B_r^prev) and returns its used bandwidth, capacity
	// and the fresh B_r.
	RecomputeReservation(li topology.LocalIndex, now float64) (used, capacity int, br float64, ok bool)
	// MaxSojourn returns neighbor li's current T_soj,max (the largest
	// sojourn in its hand-off estimation functions).
	MaxSojourn(li topology.LocalIndex, now float64) (tSojMax float64, ok bool)
}

// PeerValue validates one Peers float answer against the degraded-value
// contract: the call must have succeeded (ok) and the value must be
// finite and non-negative to be usable. It returns the value and
// whether the caller may rely on it; on false the caller substitutes
// its Fallback policy (or freezes, for window arithmetic) instead of
// letting a corrupt or sentinel value poison Eqs. 5–6. Chain it
// directly around a Peers call:
//
//	if v, ok := PeerValue(peers.OutgoingReservation(li, now, test)); ok { ... }
func PeerValue(v float64, ok bool) (float64, bool) {
	if !ok || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, false
	}
	return v, true
}

// Decision reports the outcome of an admission test.
type Decision struct {
	// Admitted says whether the new connection may be established.
	Admitted bool
	// BrCalcs is the number of target-reservation-bandwidth calculations
	// the test required across all cells (the paper's N_calc sample).
	BrCalcs int
	// Degraded reports that at least one neighbor's state was
	// unavailable during the test, so the decision rests partly on the
	// Fallback policy rather than fresh Eq. 5/6 information.
	Degraded bool
}

// Engine is the per-cell QoS brain: connection table, hand-off
// estimator, T_est controller, reservation computation, and admission
// tests. It is not safe for concurrent use; the owning BS serializes.
type Engine struct {
	cfg    Config
	pol    AdmissionPolicy // resolved (and per-cell instantiated) scheme
	traits PolicyTraits    // pol.Traits(), cached
	// ctx is the reusable decision context: admission entry points are
	// serialized by the owning BS, and reuse keeps the hot path
	// allocation-free despite the interface indirection.
	ctx PolicyContext
	lk  sync.Locker // optional; see Config.Lock
	// Connections live in a slice (stable, deterministic iteration order
	// for the Eq. 5 float sums) with a map index for O(1) lookup;
	// removal swaps with the last element.
	conns []conn
	index map[ConnID]int
	used  int

	// pledged is bandwidth promised to specific expected visitors (the
	// MobSpec baseline); it blocks admissions like used bandwidth but
	// converts to used when the pledged mobile arrives.
	pledged int

	patterns *predict.PatternSet
	tc       *TestController
	lastBr   float64 // B_r^prev: target reservation from the latest calculation
	brCalcs  uint64  // lifetime count of Eq. 6 evaluations by this engine

	// eq5 memoizes Eq. 5 state across the back-to-back queries of an
	// admission burst; see eq5cache.go for the exactness rules.
	eq5 eq5Cache

	// Degraded-mode accounting (unreachable neighbors, Fallback policy).
	// lastOut holds each neighbor's most recent successful Eq. 5 answer
	// and lastOutAt when it was observed (NaN = never), feeding the
	// FallbackDecay estimate.
	lastOut            []float64
	lastOutAt          []float64
	lastBrDegraded     bool   // latest B_r computation used ≥1 fallback
	degradedBrCalcs    uint64 // Eq. 6 evaluations that substituted a fallback
	degradedAdmissions uint64 // admission tests run on unknown neighbor state

	downgrades uint64 // adaptive-QoS downgrade events
	upgrades   uint64 // adaptive-QoS upgrade events
}

// NewEngine builds an Engine; it panics on invalid config.
func NewEngine(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	pol := ResolvePolicy(cfg.Admission, cfg.Policy)
	if cs, ok := pol.(CellStater); ok {
		// Per-cell mutable state: this engine dispatches to its own
		// instance, never the shared registry value.
		pol = cs.CloneCellState()
	}
	e := &Engine{cfg: cfg, pol: pol, traits: pol.Traits(), index: make(map[ConnID]int)}
	e.lk = cfg.Lock
	e.lastOut = make([]float64, cfg.Degree)
	e.lastOutAt = make([]float64, cfg.Degree)
	for i := range e.lastOutAt {
		e.lastOutAt[i] = math.NaN() // never heard from this neighbor
	}
	if e.traits.Adaptive {
		e.patterns = predict.NewPatternSet(cfg.Estimation, cfg.Calendar)
		e.tc = NewTestController(cfg.PHDTarget, cfg.TStart, cfg.Step)
	}
	if f, ok := pol.(FixedReservationPolicy); ok {
		e.lastBr = f.FixedReservation(cfg)
	}
	return e
}

// Policy returns the engine's resolved admission policy (the per-cell
// instance for stateful schemes).
func (e *Engine) Policy() AdmissionPolicy { return e.pol }

// Traits returns the resolved policy's traits.
func (e *Engine) Traits() PolicyTraits { return e.traits }

// lock/unlock guard local state when a Locker is configured.
func (e *Engine) lock() {
	if e.lk != nil {
		e.lk.Lock()
	}
}

func (e *Engine) unlock() {
	if e.lk != nil {
		e.lk.Unlock()
	}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// UsedBandwidth returns B_u, the bandwidth of active connections.
func (e *Engine) UsedBandwidth() int {
	e.lock()
	defer e.unlock()
	return e.used
}

// PledgedBandwidth returns bandwidth pledged to expected visitors
// (MobSpec baseline); 0 otherwise.
func (e *Engine) PledgedBandwidth() int {
	e.lock()
	defer e.unlock()
	return e.pledged
}

// Pledge reserves bw BUs for a specific expected hand-off (the MobSpec
// baseline's per-connection reservation). It fails without side effects
// when the cell cannot honor it.
func (e *Engine) Pledge(bw int) bool {
	if bw <= 0 {
		panic(fmt.Sprintf("core: non-positive pledge %d", bw))
	}
	e.lock()
	defer e.unlock()
	if e.used+e.pledged+bw > e.cfg.Capacity {
		return false
	}
	e.pledged += bw
	return true
}

// Unpledge releases a pledge (the mobile arrived, ended, or left the
// specification).
func (e *Engine) Unpledge(bw int) {
	e.lock()
	defer e.unlock()
	if bw > e.pledged {
		panic(fmt.Sprintf("core: unpledging %d of %d", bw, e.pledged))
	}
	e.pledged -= bw
}

// Capacity returns the cell's link capacity C.
func (e *Engine) Capacity() int { return e.cfg.Capacity }

// ConnectionCount returns the number of active connections.
func (e *Engine) ConnectionCount() int {
	e.lock()
	defer e.unlock()
	return len(e.conns)
}

// Test returns the current estimation window T_est; 0 for non-adaptive
// policies.
func (e *Engine) Test() float64 {
	if e.tc == nil {
		return 0
	}
	e.lock()
	defer e.unlock()
	return e.tc.Test()
}

// Controller exposes the T_est controller for diagnostics (nil for
// non-adaptive policies).
func (e *Engine) Controller() *TestController { return e.tc }

// Estimator exposes the estimator in force at time t (nil for
// non-adaptive policies).
func (e *Engine) Estimator(t float64) *predict.Estimator {
	if e.patterns == nil {
		return nil
	}
	return e.patterns.Estimator(t)
}

// LastTargetReservation returns B_r^prev, the most recently computed
// target reservation bandwidth (G for Static, 0 for None).
func (e *Engine) LastTargetReservation() float64 {
	e.lock()
	defer e.unlock()
	return e.lastBr
}

// PublishReservation records br as the current target reservation
// B_r^prev (visible to AC3 snapshots, RedistributeFree and metrics)
// without counting an Eq. 6 evaluation. Policies that maintain their
// own reservation level (dynamic guard channels) publish it here.
func (e *Engine) PublishReservation(br float64) {
	if math.IsNaN(br) || math.IsInf(br, 0) || br < 0 {
		panic(fmt.Sprintf("core: bad published reservation %v", br))
	}
	e.lock()
	defer e.unlock()
	e.lastBr = br
}

// BrCalcCount returns how many times this engine evaluated Eq. 6.
func (e *Engine) BrCalcCount() uint64 {
	e.lock()
	defer e.unlock()
	return e.brCalcs
}

// ConnSpec describes a connection to register. The zero value of each
// optional field means "absent": Max == 0 marks a rigid connection
// (max = min), and Hint == topology.Self — never a valid hand-off
// destination — means the next cell is unknown (NoHint also works).
type ConnSpec struct {
	// Min is the minimum (guaranteed) bandwidth in BUs. Required.
	Min int
	// Max caps an adaptive-QoS connection (§1): the engine grants as
	// much of [Min, Max] as the link allows. Zero means rigid.
	Max int
	// Prev is where the mobile came from: topology.Self for a freshly
	// admitted connection born here, or the origin cell's local index
	// for a hand-off arrival.
	Prev topology.LocalIndex
	// Hint is the known next cell from route guidance (the paper's §7
	// ITS/GPS extension): Eq. 5 then only estimates the hand-off *time*,
	// concentrating the reserved bandwidth on the known destination.
	Hint topology.LocalIndex
	// Class is the connection's service class (0 = highest priority);
	// multi-class policies degrade lower-priority elastic connections
	// first. The zero value keeps single-class behavior.
	Class ServiceClass
}

// AddConnection registers a connection occupying the cell and returns
// the granted bandwidth (always Min for rigid connections). The caller
// must have verified that Min fits (AdmitNew/AdmitHandOff with
// bw = Min); AddConnection panics when it does not.
func (e *Engine) AddConnection(id ConnID, spec ConnSpec, now float64) int {
	min, max := spec.Min, spec.Max
	if max == 0 {
		max = min
	}
	if min <= 0 || max < min {
		panic(fmt.Sprintf("core: bad bandwidth range [%d,%d]", min, max))
	}
	hint := spec.Hint
	if hint == topology.Self {
		hint = NoHint
	}
	if hint != NoHint && (hint < 1 || int(hint) > e.cfg.Degree) {
		panic(fmt.Sprintf("core: hint %d outside neighbor range [1,%d]", hint, e.cfg.Degree))
	}
	e.lock()
	defer e.unlock()
	if _, dup := e.index[id]; dup {
		panic(fmt.Sprintf("core: duplicate connection %d", id))
	}
	room := e.cfg.Capacity + e.cfg.HandOffMargin - e.used - e.pledged
	if room < min {
		panic(fmt.Sprintf("core: adding %d BU over capacity (%d used, %d pledged, cap %d)",
			min, e.used, e.pledged, e.cfg.Capacity))
	}
	grant := max
	if room < grant {
		grant = room
	}
	i := len(e.conns)
	e.index[id] = i
	e.conns = append(e.conns, conn{id: id, bw: grant, min: min, max: max, prev: spec.Prev, enteredAt: now, hint: hint, class: spec.Class})
	e.used += grant
	e.eq5Extend(i, now)
	return grant
}

// DowngradeToFit shrinks adaptive-QoS connections toward their minimum
// until need BUs fit beside the existing load (hand-off absorption, the
// "reducing hand-off drops" role of adaptive QoS). All-or-nothing: if
// even full degradation cannot make room, nothing changes and it
// returns false.
//
// Grant changes leave any live Eq. 5 cache intact: reservation is based
// on each connection's minimum QoS (conn.min), which up/downgrades
// never touch.
func (e *Engine) DowngradeToFit(need int) bool {
	if need <= 0 {
		panic(fmt.Sprintf("core: non-positive need %d", need))
	}
	e.lock()
	defer e.unlock()
	limit := e.cfg.Capacity + e.cfg.HandOffMargin
	short := e.used + e.pledged + need - limit
	if short <= 0 {
		return true
	}
	reclaimable := 0
	for i := range e.conns {
		reclaimable += e.conns[i].bw - e.conns[i].min
	}
	if reclaimable < short {
		return false
	}
	for i := range e.conns {
		if short <= 0 {
			break
		}
		give := e.conns[i].bw - e.conns[i].min
		if give > short {
			give = short
		}
		e.conns[i].bw -= give
		e.used -= give
		short -= give
	}
	e.downgrades++
	return true
}

// DowngradeClassToFit is the multi-class variant of DowngradeToFit: it
// shrinks only connections of service class strictly lower-priority
// than keep (class > keep) toward their minima, until need BUs fit
// under limit (committed bandwidth + need ≤ limit). All-or-nothing,
// like DowngradeToFit; the caller supplies the limit because new-call
// admissions must still clear the reservation (C − B_r) while hand-offs
// may use the full soft capacity.
func (e *Engine) DowngradeClassToFit(need int, keep ServiceClass, limit int) bool {
	if need <= 0 {
		panic(fmt.Sprintf("core: non-positive need %d", need))
	}
	e.lock()
	defer e.unlock()
	short := e.used + e.pledged + need - limit
	if short <= 0 {
		return true
	}
	reclaimable := 0
	for i := range e.conns {
		if e.conns[i].class > keep {
			reclaimable += e.conns[i].bw - e.conns[i].min
		}
	}
	if reclaimable < short {
		return false
	}
	for i := range e.conns {
		if short <= 0 {
			break
		}
		if e.conns[i].class <= keep {
			continue
		}
		give := e.conns[i].bw - e.conns[i].min
		if give > short {
			give = short
		}
		e.conns[i].bw -= give
		e.used -= give
		short -= give
	}
	e.downgrades++
	return true
}

// RedistributeFree upgrades degraded adaptive-QoS connections toward
// their maxima using bandwidth not claimed by the target reservation
// (the "upgrading QoS if possible" role). It returns the BUs restored.
func (e *Engine) RedistributeFree() int {
	e.lock()
	defer e.unlock()
	headroom := int(float64(e.cfg.Capacity) - e.lastBr)
	free := headroom - e.used - e.pledged
	restored := 0
	for i := range e.conns {
		if free <= 0 {
			break
		}
		take := e.conns[i].max - e.conns[i].bw
		if take > free {
			take = free
		}
		if take > 0 {
			e.conns[i].bw += take
			e.used += take
			free -= take
			restored += take
		}
	}
	if restored > 0 {
		e.upgrades++
	}
	return restored
}

// DegradedBandwidth returns the total shortfall of adaptive-QoS
// connections below their maxima (0 when everyone is at full quality).
func (e *Engine) DegradedBandwidth() int {
	e.lock()
	defer e.unlock()
	deg := 0
	for i := range e.conns {
		deg += e.conns[i].max - e.conns[i].bw
	}
	return deg
}

// QoSAdaptations returns lifetime (downgrade-events, upgrade-events).
func (e *Engine) QoSAdaptations() (down, up uint64) {
	e.lock()
	defer e.unlock()
	return e.downgrades, e.upgrades
}

// RemoveConnection deletes a connection (ended, handed off out, or
// dropped) and frees its bandwidth.
func (e *Engine) RemoveConnection(id ConnID) {
	e.lock()
	defer e.unlock()
	i, ok := e.index[id]
	if !ok {
		panic(fmt.Sprintf("core: removing unknown connection %d", id))
	}
	e.used -= e.conns[i].bw
	last := len(e.conns) - 1
	if i != last {
		e.conns[i] = e.conns[last]
		e.index[e.conns[i].id] = i
	}
	e.conns = e.conns[:last]
	delete(e.index, id)
	// Mirror the swap-removal in the materialized Eq. 5 view: the
	// per-connection state moves with the table and only the direction
	// sums are re-accumulated (in the new table order, as a
	// from-scratch walk now would — a float sum cannot be patched by
	// subtraction).
	e.eq5Remove(i, last)
}

// Connection returns a connection's bandwidth, origin and entry time.
func (e *Engine) Connection(id ConnID) (bw int, prev topology.LocalIndex, enteredAt float64, ok bool) {
	e.lock()
	defer e.unlock()
	i, found := e.index[id]
	if !found {
		return 0, 0, 0, false
	}
	c := e.conns[i]
	return c.bw, c.prev, c.enteredAt, true
}

// RecordDeparture feeds a hand-off event quadruplet into the estimator
// (no-op for non-adaptive policies).
func (e *Engine) RecordDeparture(q predict.Quadruplet) {
	if e.patterns == nil {
		return
	}
	e.lock()
	defer e.unlock()
	preGen := e.patterns.Estimator(q.Event).Generation()
	visible := e.patterns.Record(q)
	e.eq5NoteRecord(q, visible, preGen)
}

// NoteHandOffArrival drives the T_est controller with one hand-off into
// this cell. For drops it fetches T_soj,max from the neighbors via
// peers (the controller's cap); successful hand-offs don't need it.
func (e *Engine) NoteHandOffArrival(now float64, dropped bool, peers Peers) {
	if obs, ok := e.pol.(HandOffObserver); ok {
		// Policy feedback (e.g. a dynamic guard level) sees every
		// hand-off arrival, before the T_est controller.
		obs.ObserveHandOff(e, now, dropped)
	}
	if e.tc == nil {
		return
	}
	tSojMax := math.Inf(1)
	if dropped {
		// Remote fan-out happens before taking the local lock (see
		// Config.Lock): a neighbor may query us while we gather.
		tSojMax = 0
		unknown := false
		for li := topology.LocalIndex(1); int(li) <= e.cfg.Degree; li++ {
			m, ok := PeerValue(peers.MaxSojourn(li, now))
			if !ok {
				// Unreachable neighbor, or a corrupt frame decoding to
				// ±Inf/NaN: its T_soj,max is unknown. Clamp here so a
				// non-finite value can never enter the T_est window
				// arithmetic and un-cap the controller.
				unknown = true
				continue
			}
			if m > tSojMax {
				tSojMax = m
			}
		}
		e.lock()
		defer e.unlock()
		if tSojMax == 0 {
			if unknown {
				// Every answer was missing: freeze T_est at its current
				// value rather than letting it grow without the
				// T_soj,max cap while the neighborhood is dark.
				tSojMax = e.tc.Test()
			} else {
				// No estimation data anywhere yet: leave T_est free to grow.
				tSojMax = math.Inf(1)
			}
		}
		e.tc.OnHandOff(dropped, tSojMax)
		return
	}
	e.lock()
	defer e.unlock()
	e.tc.OnHandOff(dropped, tSojMax)
}

// OutgoingReservation evaluates Eq. 5 from this (sending) cell's side:
// B_{this,toward} = Σ_j b(C_j) · p_h(C_j → toward within test), using
// this cell's hand-off estimation functions and each connection's extant
// sojourn time.
//
// Results come from the materialized Eq. 5 view (eq5cache.go): the
// per-connection Eq. 4 base state is maintained across events and
// timestamps advance incrementally — only connections whose extant
// sojourn crossed a selected-sojourn breakpoint are refreshed — so a
// steady admission burst answers in O(live connections) guard checks
// instead of re-walking every Eq. 4 query, allocation-free and
// bit-identical to a from-scratch walk. A changed window, estimator, or
// estimator generation forces a full rebuild; a cold direction pays one
// term-materialization pass.
func (e *Engine) OutgoingReservation(now float64, toward topology.LocalIndex, test float64) float64 {
	if m, ok := e.pol.(OutgoingModel); ok {
		// Analytical model (the ExpDwell baseline): the policy replaces
		// the history-based evaluation entirely.
		return m.ModelOutgoing(e, now, toward, test)
	}
	if e.patterns == nil {
		return 0
	}
	e.lock()
	defer e.unlock()
	est := e.patterns.Estimator(now)
	c := &e.eq5
	if !e.eq5Current(now, test, est) {
		// No live view for this window/estimator/generation: build it
		// from scratch, answering this direction in the same fused
		// walk, so a key queried once costs one pass over the table —
		// the same as the from-scratch walk.
		c.misses++
		return e.eq5Rebuild(now, test, est, toward)
	}
	t := int(toward)
	if t >= 1 && t < len(c.done) && c.done[t] {
		c.hits++
		return c.sums[t]
	}
	c.misses++
	sum := e.eq5Accumulate(toward)
	if t >= 1 && t < len(c.done) {
		c.sums[t] = sum
		c.done[t] = true
	}
	return sum
}

// ComputeTargetReservation evaluates Eq. 6: B_r = Σ_{i∈A} B_{i,this},
// asking each neighbor for its Eq. 5 contribution within this cell's
// current T_est. It updates B_r^prev and counts one B_r calculation.
// Non-adaptive policies return their fixed reservation.
func (e *Engine) ComputeTargetReservation(now float64, peers Peers) float64 {
	if f, ok := e.pol.(FixedReservationPolicy); ok {
		return f.FixedReservation(e.cfg)
	}
	test := e.cfg.ExpDwellWindow // fixed window for the ExpDwell baseline
	if e.tc != nil {
		e.lock()
		test = e.tc.Test()
		e.unlock()
	}
	// Fan out to the neighbors without holding the local lock.
	br := 0.0
	degraded := false
	for li := topology.LocalIndex(1); int(li) <= e.cfg.Degree; li++ {
		v, ok := PeerValue(peers.OutgoingReservation(li, now, test))
		e.lock()
		if ok {
			e.lastOut[li-1] = v
			e.lastOutAt[li-1] = now
		} else {
			// Unreachable neighbor (or a corrupt value): substitute the
			// conservative fallback instead of silently under-reserving.
			degraded = true
			v = e.fallbackContribution(int(li), now)
		}
		e.unlock()
		br += v
	}
	e.lock()
	e.lastBr = br
	e.brCalcs++
	e.lastBrDegraded = degraded
	if degraded {
		e.degradedBrCalcs++
	}
	e.unlock()
	return br
}

// BrDegraded reports whether the most recent B_r computation had to
// substitute a fallback contribution for an unreachable neighbor.
func (e *Engine) BrDegraded() bool {
	e.lock()
	defer e.unlock()
	return e.lastBrDegraded
}

// DegradedBrCalcs returns how many Eq. 6 evaluations ran in degraded
// mode (≥1 neighbor answered by the Fallback policy).
func (e *Engine) DegradedBrCalcs() uint64 {
	e.lock()
	defer e.unlock()
	return e.degradedBrCalcs
}

// DegradedAdmissions returns how many admission tests were decided with
// at least one neighbor's state unknown.
func (e *Engine) DegradedAdmissions() uint64 {
	e.lock()
	defer e.unlock()
	return e.degradedAdmissions
}

// committed returns used plus pledged bandwidth (what admissions must
// clear) under the caller's lock discipline.
func (e *Engine) committed() int {
	e.lock()
	defer e.unlock()
	return e.used + e.pledged
}

// AdmitHandOff tests whether a hand-off of bw BUs fits: reserved
// bandwidth is usable by hand-offs, so the only constraint is capacity
// (including outstanding pledges) — plus the CDMA soft-capacity margin
// when configured.
func (e *Engine) AdmitHandOff(bw int) bool {
	e.lock()
	defer e.unlock()
	return e.used+e.pledged+bw <= e.cfg.Capacity+e.cfg.HandOffMargin
}

// AdmitNew runs the policy's admission test for a new connection of bw
// BUs requested at time now (paper §4.3). It recomputes B_r as required
// by the policy but does not register the connection; call AddConnection
// after a positive decision. The request carries the zero (highest
// priority) service class; AdmitNewRequest takes an explicit one.
func (e *Engine) AdmitNew(now float64, bw int, peers Peers) Decision {
	return e.AdmitNewRequest(now, Request{Bandwidth: bw}, peers)
}

// AdmitNewRequest dispatches a new-call admission to the policy. The
// decision context is reused across calls (admission entry points are
// serialized by the owning BS), keeping the hot path allocation-free.
func (e *Engine) AdmitNewRequest(now float64, req Request, peers Peers) Decision {
	if req.Bandwidth <= 0 {
		panic(fmt.Sprintf("core: non-positive bandwidth %d", req.Bandwidth))
	}
	e.ctx = PolicyContext{Now: now, Bandwidth: req.Bandwidth, Class: req.Class, engine: e, peers: peers}
	return e.finishDecision(e.pol.DecideNew(&e.ctx))
}

// AdmitHandOffRequest dispatches a hand-off admission to the policy.
// Every built-in policy answers with the base capacity test (see
// AdmitHandOff); custom policies may additionally degrade lower-class
// connections or consult neighbors.
func (e *Engine) AdmitHandOffRequest(now float64, req Request, peers Peers) Decision {
	if req.Bandwidth <= 0 {
		panic(fmt.Sprintf("core: non-positive bandwidth %d", req.Bandwidth))
	}
	e.ctx = PolicyContext{Now: now, Bandwidth: req.Bandwidth, Class: req.Class, HandOff: true, engine: e, peers: peers}
	return e.finishDecision(e.pol.DecideHandOff(&e.ctx))
}

// finishDecision books degraded-mode accounting for an admission test.
func (e *Engine) finishDecision(d Decision) Decision {
	if d.Degraded {
		e.lock()
		e.degradedAdmissions++
		e.unlock()
	}
	return d
}

// MaxSojourn returns this cell's current T_soj,max (largest selected
// sojourn in its estimation functions); 0 for non-adaptive policies.
func (e *Engine) MaxSojourn(now float64) float64 {
	if e.patterns == nil {
		return 0
	}
	e.lock()
	defer e.unlock()
	return e.patterns.MaxSojourn(now)
}

// SweepHistory evicts out-of-date quadruplets from the estimation
// caches (the §3.1 deletion rule); the owner calls it periodically.
// No-op for non-adaptive policies and infinite estimation intervals.
func (e *Engine) SweepHistory(t float64) {
	if e.patterns == nil {
		return
	}
	e.lock()
	defer e.unlock()
	e.patterns.SweepAt(t)
}
