package core_test

import (
	"slices"
	"testing"
	"time"

	"cellqos/internal/clock"
	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/topology"
)

// The admission benchmarks drive AdmitNew on a cluster of degree-6
// engines (a wrapped hex-grid neighborhood) whose estimators are loaded
// with a full complement of hand-off history, at small/medium/large
// per-cell connection populations. Arrivals come in bursts that share a
// timestamp — the paper's "every new-connection request recomputes B_r"
// fast path — so the cost measured is exactly the Eq. 5–6 walk:
// ComputeTargetReservation → 6 × OutgoingReservation → per-connection
// estimator queries.

// benchDegree is the cluster fan-out; benchCells engines are wired into
// a circulant graph (neighbors at ring distance 1, 2 and 3), which gives
// every cell exactly benchDegree neighbors like a wrapped hex grid.
const (
	benchDegree = 6
	benchCells  = 12
	benchStart  = 1000.0
	benchBurst  = 8
)

// benchOffsets lists neighbor ring offsets in local-index order 1..6.
// The inverse direction of local index li is li^1 in 0-based form:
// offsets come in ± pairs, so (li-1)^1+1 flips +d to −d.
var benchOffsets = [benchDegree]int{1, -1, 2, -2, 3, -3}

func benchNeighbor(self int, li topology.LocalIndex) int {
	return ((self+benchOffsets[li-1])%benchCells + benchCells) % benchCells
}

func benchToward(li topology.LocalIndex) topology.LocalIndex {
	return topology.LocalIndex((int(li)-1)^1) + 1
}

// benchCluster is an in-memory cluster: engines reach each other through
// benchPeers, which delegates straight to the neighbor engine (the
// cellnet wiring without the simulation around it).
type benchCluster struct {
	engines []*core.Engine
	peers   []*benchPeers
}

type benchPeers struct {
	cl   *benchCluster
	self int
}

func (p *benchPeers) OutgoingReservation(li topology.LocalIndex, now, test float64) (float64, bool) {
	nb := p.cl.engines[benchNeighbor(p.self, li)]
	return nb.OutgoingReservation(now, benchToward(li), test), true
}

func (p *benchPeers) Snapshot(li topology.LocalIndex) (int, int, float64, bool) {
	nb := p.cl.engines[benchNeighbor(p.self, li)]
	return nb.UsedBandwidth(), nb.Capacity(), nb.LastTargetReservation(), true
}

func (p *benchPeers) RecomputeReservation(li topology.LocalIndex, now float64) (int, int, float64, bool) {
	id := benchNeighbor(p.self, li)
	nb := p.cl.engines[id]
	br := nb.ComputeTargetReservation(now, p.cl.peers[id])
	return nb.UsedBandwidth(), nb.Capacity(), br, true
}

func (p *benchPeers) MaxSojourn(li topology.LocalIndex, now float64) (float64, bool) {
	nb := p.cl.engines[benchNeighbor(p.self, li)]
	return nb.MaxSojourn(now), true
}

// benchAddConn registers a rigid connection through the current public
// entry point (kept as a helper so the benchmark body survives API
// migrations unchanged).
func benchAddConn(e *core.Engine, id core.ConnID, bw int, prev topology.LocalIndex, now float64) {
	e.AddConnection(id, core.ConnSpec{Min: bw, Prev: prev}, now)
}

// newBenchCluster builds the cluster with connsPerCell active rigid
// connections per cell and every estimator loaded with 40 quadruplets
// for each (prev, next) pair — sojourns spread over [5, 125) so Eq. 4
// denominators stay populated across the extant-sojourn range.
func newBenchCluster(pol core.Policy, connsPerCell int) *benchCluster {
	cfg := core.Config{
		Capacity:   2*connsPerCell + 64,
		Degree:     benchDegree,
		Policy:     pol,
		PHDTarget:  0.01,
		TStart:     4,
		Estimation: predict.StationaryConfig(),
	}
	cl := &benchCluster{}
	for c := 0; c < benchCells; c++ {
		e := core.NewEngine(cfg)
		ev := 0.0
		for prev := topology.LocalIndex(0); int(prev) <= benchDegree; prev++ {
			for next := topology.LocalIndex(1); int(next) <= benchDegree; next++ {
				for k := 0; k < 40; k++ {
					soj := 5 + float64((k*7+int(prev)*3+int(next))%120)
					e.RecordDeparture(predict.Quadruplet{Event: ev, Prev: prev, Next: next, Sojourn: soj})
					ev += 0.01
				}
			}
		}
		for j := 0; j < connsPerCell; j++ {
			id := core.ConnID(c)<<32 | core.ConnID(j+1)
			prev := topology.LocalIndex(j % (benchDegree + 1))
			benchAddConn(e, id, 1, prev, benchStart-float64(j%90))
		}
		cl.engines = append(cl.engines, e)
		cl.peers = append(cl.peers, &benchPeers{cl: cl, self: c})
	}
	return cl
}

// benchmarkAdmitNew measures sustained admission throughput: requests
// arrive in bursts of benchBurst sharing one timestamp, round-robin over
// the cells; admitted connections are registered and the per-cell
// population is held steady by retiring the oldest benchmark-added
// connection once four are live.
//
// Besides the standard mean ns/op it reports the per-operation p99 as a
// custom "p99-ns/op" metric: the materialized Eq. 5 view makes the mean
// nearly meaningless on its own, because most operations are pure
// incremental advances and the tail is where rebuilds and
// breakpoint-refresh storms would hide. The per-op wall-clock sampling
// is diagnostics around the measured region, preallocated so it adds no
// allocations to the steady state. cmd/benchjson gates the metric with
// the other time-based numbers under -check-time.
func benchmarkAdmitNew(b *testing.B, connsPerCell int) {
	cl := newBenchCluster(core.AC1, connsPerCell)
	now := benchStart
	nextID := core.ConnID(1) << 40
	var live [benchCells][]core.ConnID
	for c := range live {
		live[c] = make([]core.ConnID, 0, 8)
	}
	durs := make([]time.Duration, 0, b.N)
	wall := clock.Wall{} // per-op latency sampling; never reaches engine state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell := i % benchCells
		e := cl.engines[cell]
		opStart := wall.Now()
		d := e.AdmitNew(now, 1, cl.peers[cell])
		if d.Admitted {
			if len(live[cell]) == 4 {
				e.RemoveConnection(live[cell][0])
				copy(live[cell], live[cell][1:])
				live[cell] = live[cell][:3]
			}
			benchAddConn(e, nextID, 1, topology.Self, now)
			live[cell] = append(live[cell], nextID)
			nextID++
		}
		durs = append(durs, wall.Since(opStart))
		if (i+1)%benchBurst == 0 {
			now += 0.25
		}
	}
	b.StopTimer()
	slices.Sort(durs)
	p99 := durs[len(durs)*99/100] // len·99/100 < len for every len ≥ 1
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns/op")
}

func BenchmarkAdmitNew(b *testing.B) {
	b.Run("small", func(b *testing.B) { benchmarkAdmitNew(b, 16) })
	b.Run("medium", func(b *testing.B) { benchmarkAdmitNew(b, 64) })
	b.Run("large", func(b *testing.B) { benchmarkAdmitNew(b, 256) })
}

// BenchmarkOutgoingReservation isolates the Eq. 5 answer path of one
// loaded engine: repeated queries at one timestamp cycling over the six
// directions — the exact pattern a burst of neighbor admissions
// produces. This is the steady-state estimator-query layer, which must
// run allocation-free.
func BenchmarkOutgoingReservation(b *testing.B) {
	cl := newBenchCluster(core.AC1, 256)
	e := cl.engines[0]
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		toward := topology.LocalIndex(i%benchDegree) + 1
		sum += e.OutgoingReservation(benchStart, toward, 4)
	}
	benchSink = sum
}

var benchSink float64
