package core

import "fmt"

// Ledger is a consistent snapshot of an Engine's bandwidth accounting,
// taken under the engine's lock. It exists so an external checker
// (internal/audit) can verify conservation invariants — Σ bw == B_u,
// B_u + pledged ≤ C + margin, elastic min ≤ bw ≤ max — without reaching
// into unexported state or racing concurrent deployments.
type Ledger struct {
	// Static configuration echoed for bound checks.
	Capacity int
	Margin   int // HandOffMargin (CDMA soft capacity, §7)
	Degree   int
	Adaptive bool // policy runs the predictive machinery

	// Live accounting.
	Used        int // B_u as tracked incrementally
	Pledged     int // MobSpec pledge pool
	Connections int
	SumBw       int // Σ granted bandwidth over the connection table
	SumMin      int // Σ minimum QoS over the connection table

	// BadConn describes the first connection whose own record is
	// inconsistent (bw outside [min,max], non-positive min, or a stale
	// index entry); empty when the table is sound.
	BadConn string

	// LastBr is B_r^prev; Test is the current T_est (0 when non-adaptive).
	LastBr float64
	Test   float64

	// Degraded-mode accounting (unreachable neighbors, Fallback policy).
	// BrCalcs is the lifetime count of Eq. 6 evaluations;
	// DegradedBrCalcs of those, how many substituted ≥1 fallback
	// contribution; DegradedAdmissions counts admission tests decided on
	// unknown neighbor state; LastBrDegraded flags the latest B_r.
	BrCalcs            uint64
	DegradedBrCalcs    uint64
	DegradedAdmissions uint64
	LastBrDegraded     bool

	// Materialized Eq. 5 view accounting (see eq5cache.go): lifetime
	// full rebuilds, incremental timestamp advances, and per-connection
	// refreshes during those advances. Diagnostics for the audit sweep
	// and perf triage — a rebuild count tracking the event count means
	// the view is thrashing instead of advancing.
	Eq5Rebuilds  uint64
	Eq5Advances  uint64
	Eq5Refreshes uint64
	// Eq5Adoptions counts estimator generations the view adopted in
	// place after a provably invisible Record (see eq5NoteRecord) —
	// rebuilds the adoption path spared.
	Eq5Adoptions uint64
}

// Ledger snapshots the engine's accounting state atomically.
func (e *Engine) Ledger() Ledger {
	e.lock()
	defer e.unlock()
	l := Ledger{
		Capacity:           e.cfg.Capacity,
		Margin:             e.cfg.HandOffMargin,
		Degree:             e.cfg.Degree,
		Adaptive:           e.traits.Adaptive,
		Used:               e.used,
		Pledged:            e.pledged,
		Connections:        len(e.conns),
		LastBr:             e.lastBr,
		BrCalcs:            e.brCalcs,
		DegradedBrCalcs:    e.degradedBrCalcs,
		DegradedAdmissions: e.degradedAdmissions,
		LastBrDegraded:     e.lastBrDegraded,
		Eq5Rebuilds:        e.eq5.rebuilds,
		Eq5Advances:        e.eq5.advances,
		Eq5Refreshes:       e.eq5.refreshes,
		Eq5Adoptions:       e.eq5.adoptions,
	}
	if e.tc != nil {
		l.Test = e.tc.Test()
	}
	for i := range e.conns {
		c := &e.conns[i]
		l.SumBw += c.bw
		l.SumMin += c.min
		if l.BadConn == "" {
			switch {
			case c.min <= 0 || c.max < c.min:
				l.BadConn = fmt.Sprintf("conn %d: bad range [%d,%d]", c.id, c.min, c.max)
			case c.bw < c.min || c.bw > c.max:
				l.BadConn = fmt.Sprintf("conn %d: bw %d outside [%d,%d]", c.id, c.bw, c.min, c.max)
			case e.index[c.id] != i:
				l.BadConn = fmt.Sprintf("conn %d: index points at %d, stored at %d", c.id, e.index[c.id], i)
			}
		}
	}
	if len(e.index) != len(e.conns) && l.BadConn == "" {
		l.BadConn = fmt.Sprintf("index has %d entries for %d connections", len(e.index), len(e.conns))
	}
	return l
}
