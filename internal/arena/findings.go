package arena

import (
	"fmt"
	"math"
)

// judge evaluates the pre-registered hypotheses against a finished run.
// The hypotheses are fixed before any data is seen (they are code, not
// prose written after the fact); the arena only fills in verdicts and
// evidence. H2, H3 and H5 are mechanism checks: each asserts the
// internal behavior that is supposed to *produce* a contender's
// headline numbers, so a scheme cannot "win" the arena through an
// unrelated accident of the workload.
func judge(o *Outcome) []Finding {
	loads := o.Options.Loads
	lo, hi := loads[0], loads[0]
	for _, l := range loads {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	rvo := o.Options.VoiceRatios[0]
	twoLoads := hi > lo

	skip := func(f Finding) Finding {
		f.Skipped = true
		f.Evidence = "required contender or load level absent from this grid"
		return f
	}

	findings := make([]Finding, 0, 5)

	h1 := Finding{
		ID: "H1",
		Statement: fmt.Sprintf("AC3 violates the P_HD target in no more grid cells than static G=10 "+
			"while blocking fewer new calls at (load %g, rvo %g)", hi, rvo),
	}
	if ac3, st := o.byName("AC3"), o.byName("static"); ac3 == nil || st == nil {
		h1 = skip(h1)
	} else {
		a, s := ac3.cell(hi, rvo), st.cell(hi, rvo)
		h1.Confirmed = ac3.Violations <= st.Violations && a.PCB < s.PCB
		h1.Evidence = fmt.Sprintf("violations AC3=%d static=%d; P_CB@(%g,%g) AC3=%.4g static=%.4g",
			ac3.Violations, st.Violations, hi, rvo, a.PCB, s.PCB)
	}
	findings = append(findings, h1)

	h2 := Finding{
		ID:        "H2",
		Mechanism: true,
		Statement: fmt.Sprintf("AC3's reservation adapts to load (mean B_r at load %g exceeds load %g) "+
			"while static's B_r is load-invariant", hi, lo),
	}
	if ac3, st := o.byName("AC3"), o.byName("static"); ac3 == nil || st == nil || !twoLoads {
		h2 = skip(h2)
	} else {
		br := func(p *PolicyOutcome, l float64) float64 { return p.meanAt(l, func(c *Cell) float64 { return c.Br }) }
		aHi, aLo := br(ac3, hi), br(ac3, lo)
		sHi, sLo := br(st, hi), br(st, lo)
		h2.Confirmed = aHi > aLo && math.Abs(sHi-sLo) < 1e-9
		h2.Evidence = fmt.Sprintf("B_r AC3 %.3f->%.3f (Δ=%.3f); static %.3f->%.3f (Δ=%.2g)",
			aLo, aHi, aHi-aLo, sLo, sHi, sHi-sLo)
	}
	findings = append(findings, h2)

	h3 := Finding{
		ID:        "H3",
		Mechanism: true,
		Statement: fmt.Sprintf("guard-dynamic widens its guard band under hand-off pressure "+
			"(mean B_r at load %g exceeds load %g)", hi, lo),
	}
	if gd := o.byName("guard-dynamic"); gd == nil || !twoLoads {
		h3 = skip(h3)
	} else {
		gHi := gd.meanAt(hi, func(c *Cell) float64 { return c.Br })
		gLo := gd.meanAt(lo, func(c *Cell) float64 { return c.Br })
		h3.Confirmed = gHi > gLo
		h3.Evidence = fmt.Sprintf("B_r guard-dynamic %.3f->%.3f (Δ=%.3f)", gLo, gHi, gHi-gLo)
	}
	findings = append(findings, h3)

	h4 := Finding{
		ID: "H4",
		Statement: fmt.Sprintf("token-bucket shifts loss onto new calls relative to admit-all: at load %g "+
			"its P_CB is no lower and its P_HD no higher than none's", hi),
	}
	if tb, nn := o.byName("token-bucket"), o.byName("none"); tb == nil || nn == nil {
		h4 = skip(h4)
	} else {
		tPCB := tb.meanAt(hi, func(c *Cell) float64 { return c.PCB })
		nPCB := nn.meanAt(hi, func(c *Cell) float64 { return c.PCB })
		tPHD := tb.meanAt(hi, func(c *Cell) float64 { return c.PHD })
		nPHD := nn.meanAt(hi, func(c *Cell) float64 { return c.PHD })
		h4.Confirmed = tPCB >= nPCB && tPHD <= nPHD
		h4.Evidence = fmt.Sprintf("@load %g: P_CB token-bucket=%.4g none=%.4g; P_HD token-bucket=%.4g none=%.4g",
			hi, tPCB, nPCB, tPHD, nPHD)
	}
	findings = append(findings, h4)

	h5 := Finding{
		ID:        "H5",
		Mechanism: true,
		Statement: fmt.Sprintf("multi-class admits by degrading video: its QoS downgrade count at load %g "+
			"exceeds AC1's", hi),
	}
	if mc, ac1 := o.byName("multi-class"), o.byName("AC1"); mc == nil || ac1 == nil {
		h5 = skip(h5)
	} else {
		mDn := mc.meanAt(hi, func(c *Cell) float64 { return c.Downgrades })
		aDn := ac1.meanAt(hi, func(c *Cell) float64 { return c.Downgrades })
		h5.Confirmed = mDn > aDn
		h5.Evidence = fmt.Sprintf("downgrades@load %g: multi-class=%.1f AC1=%.1f", hi, mDn, aDn)
	}
	findings = append(findings, h5)

	return findings
}
