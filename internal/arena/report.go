package arena

import (
	"bytes"
	"fmt"
	"sort"

	"cellqos/internal/stats"
)

// Report is the arena outcome's canonical text serialization — the
// bytes committed under results/arena and pinned by the golden test.
// Identical simulation data serializes to identical bytes at any
// Parallel, which is how the arena inherits the runner's determinism
// guarantee.
func (o *Outcome) Report() []byte {
	var b bytes.Buffer
	opt := o.Options
	fmt.Fprintf(&b, "admission-policy arena\n")
	fmt.Fprintf(&b, "grid: loads=%v rvo=%v seeds=%d (base seed %d) duration=%gs\n",
		opt.Loads, opt.VoiceRatios, opt.Seeds, opt.Seed, opt.Duration)
	fmt.Fprintf(&b, "target: P_HD <= %g\n\n", PHDTarget)

	// Ranking: fewest target violations first, then lowest mean P_CB;
	// roster order breaks exact ties.
	rank := make([]*PolicyOutcome, len(o.Policies))
	for i := range o.Policies {
		rank[i] = &o.Policies[i]
	}
	sort.SliceStable(rank, func(i, j int) bool {
		if rank[i].Violations != rank[j].Violations {
			return rank[i].Violations < rank[j].Violations
		}
		return rank[i].MeanPCB < rank[j].MeanPCB
	})
	fmt.Fprintf(&b, "RANKING (by P_HD-target violations, then mean P_CB)\n")
	rt := stats.NewTable("rank", "policy", "violations", "mean P_HD", "mean P_CB", "mean util")
	for i, p := range rank {
		rt.AddRowStrings(fmt.Sprintf("%d", i+1), p.Name, fmt.Sprintf("%d/%d", p.Violations, len(p.Cells)),
			stats.FormatProb(p.MeanPHD), stats.FormatProb(p.MeanPCB), fmt.Sprintf("%.3f", p.MeanUtil))
	}
	b.WriteString(rt.String())

	fmt.Fprintf(&b, "\nGRID (seed means over %d seeds)\n", opt.Seeds)
	gt := stats.NewTable("policy", "load", "rvo", "P_HD", "P_CB", "util", "B_r", "downgrades")
	for i := range o.Policies {
		p := &o.Policies[i]
		for _, c := range p.Cells {
			gt.AddRowStrings(p.Name, fmt.Sprintf("%g", c.Load), fmt.Sprintf("%g", c.Rvo),
				stats.FormatProb(c.PHD), stats.FormatProb(c.PCB),
				fmt.Sprintf("%.3f", c.Util), fmt.Sprintf("%.2f", c.Br), fmt.Sprintf("%.1f", c.Downgrades))
		}
	}
	b.WriteString(gt.String())

	fmt.Fprintf(&b, "\nDOMINANCE (x: row's P_HD and P_CB no worse than column's in every cell, at least one strictly better)\n")
	head := append([]string{""}, policyNames(o)...)
	dt := stats.NewTable(head...)
	for i := range o.Policies {
		row := make([]string, 1, len(o.Policies)+1)
		row[0] = o.Policies[i].Name
		for j := range o.Policies {
			switch {
			case i == j:
				row = append(row, "-")
			case Dominates(&o.Policies[i], &o.Policies[j]):
				row = append(row, "x")
			default:
				row = append(row, ".")
			}
		}
		dt.AddRowStrings(row...)
	}
	b.WriteString(dt.String())

	fmt.Fprintf(&b, "\nFINDINGS (pre-registered hypotheses)\n")
	for _, f := range o.Findings {
		verdict := "REJECTED"
		if f.Confirmed {
			verdict = "CONFIRMED"
		}
		if f.Skipped {
			verdict = "SKIPPED"
		}
		tag := ""
		if f.Mechanism {
			tag = " [mechanism]"
		}
		fmt.Fprintf(&b, "%s [%s]%s %s\n  evidence: %s\n", f.ID, verdict, tag, f.Statement, f.Evidence)
	}
	return b.Bytes()
}

func policyNames(o *Outcome) []string {
	names := make([]string, len(o.Policies))
	for i := range o.Policies {
		names[i] = o.Policies[i].Name
	}
	return names
}
