package arena

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cellqos/internal/audit"
	"cellqos/internal/core"
)

var update = flag.Bool("update", false, "rewrite the pinned arena report")

// TestArenaGolden regenerates the full default arena and compares it
// byte-for-byte against the committed results/arena/arena.txt. Run with
// -update after an intentional change to re-pin.
func TestArenaGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full arena grid in -short mode")
	}
	out, err := Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := out.Report()
	path := filepath.Join("..", "..", "results", "arena", "arena.txt")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read pinned report (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("arena report drifted from %s (rerun with -update if intentional)\n--- got ---\n%s", path, got)
	}
}

// TestArenaSmoke is the reduced grid the CI arena-smoke job runs under
// -race: every roster contender, one stressed load, both mixes, two
// seeds, with the runtime invariant auditor attached.
func TestArenaSmoke(t *testing.T) {
	out, err := Run(Options{
		Duration: 200,
		Seeds:    2,
		Loads:    []float64{300},
		Audit:    &audit.Checker{EveryN: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(out.Policies), len(Roster()); got != want {
		t.Fatalf("ranked %d policies, want %d", got, want)
	}
	for _, p := range out.Policies {
		if len(p.Cells) != 2 {
			t.Fatalf("%s: %d grid cells, want 2", p.Name, len(p.Cells))
		}
		for _, c := range p.Cells {
			if c.Util <= 0 || c.Util > 1 {
				t.Errorf("%s cell (%g,%g): utilization %v out of (0,1]", p.Name, c.Load, c.Rvo, c.Util)
			}
		}
	}
	if len(out.Findings) != 5 {
		t.Fatalf("%d findings, want 5", len(out.Findings))
	}
	for _, f := range out.Findings {
		if f.Evidence == "" {
			t.Errorf("%s: empty evidence", f.ID)
		}
	}
	if len(out.Report()) == 0 {
		t.Fatal("empty report")
	}
}

// TestArenaUnknownPolicy verifies a bad roster name fails up front with
// the registry's suggestion-bearing error, before any simulation runs.
func TestArenaUnknownPolicy(t *testing.T) {
	_, err := Run(Options{Policies: []string{"AC9"}})
	if err == nil {
		t.Fatal("want error for unknown policy")
	}
	if _, regErr := core.PolicyByName("AC9"); regErr == nil || err.Error() != regErr.Error() {
		t.Fatalf("want registry error, got %v", err)
	}
}

// TestRosterRegistered pins the arena roster to the policy registry:
// every contender resolves, and the roster covers at least the nine
// schemes the arena report promises to rank.
func TestRosterRegistered(t *testing.T) {
	if len(Roster()) < 9 {
		t.Fatalf("roster has %d contenders, want >= 9", len(Roster()))
	}
	for _, name := range Roster() {
		if _, err := core.PolicyByName(name); err != nil {
			t.Errorf("roster contender %q not registered: %v", name, err)
		}
	}
}
