// Package runner executes simulation scenarios on a worker pool.
//
// A Scenario is a declarative point to run — a cellnet.Config plus a
// duration and an optional replication count — and a Runner fans a list
// of them out over GOMAXPROCS workers (overridable), with
// context.Context cancellation, per-point panic capture, and a pluggable
// progress sink. Results are merged by point index, never by completion
// order, so the output is deterministic: for a fixed seed, the same
// scenario list produces identical Results at Parallel=1 and
// Parallel=N.
//
// The determinism contract rests on the "one Network per goroutine"
// invariant: each point builds its own cellnet.Network from its own
// Config inside the worker, and nothing mutable is shared between
// points. Callers must honor the same rule when building Scenarios —
// in particular a Config's Backbone pointer is mutable state that may
// belong to at most one Network (cellnet.New enforces this).
//
// internal/experiments expresses every reproduced figure and table as a
// Scenario list on top of this package; cmd/experiments and cmd/cellsim
// expose the worker pool as -parallel / -timeout flags.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cellqos/internal/cellnet"
	"cellqos/internal/clock"
)

// Scenario is one declarative simulation point.
type Scenario struct {
	// Key labels the point in progress output and error messages.
	Key string
	// Config fully describes the network; it must be freshly built for
	// this scenario (mutable parts such as Backbone cannot be shared).
	Config cellnet.Config
	// Duration is the simulated time to run, in seconds.
	Duration float64
	// Reps replicates the scenario with derived seeds Config.Seed,
	// Config.Seed+1, …, Config.Seed+Reps-1. Zero or one means a single
	// run. Scenarios with a Backbone cannot be replicated (the pointer
	// would be shared across Networks).
	Reps int
	// Post, when non-nil, runs in the worker after the simulation
	// finishes, with the live Network for state only a Result cannot
	// carry (e.g. per-engine controller counters). Its return value is
	// stored in PointResult.Extra.
	Post func(*cellnet.Network, *cellnet.Result) any
}

// reps returns the effective replication count.
func (s Scenario) reps() int {
	if s.Reps < 2 {
		return 1
	}
	return s.Reps
}

// PointResult is the outcome of one expanded scenario point.
type PointResult struct {
	// Index is the position in the expanded point list (scenario-major,
	// then replication); results are always returned in this order.
	Index int
	// Scenario is the index of the originating Scenario.
	Scenario int
	// Rep is the replication number within the scenario (0-based).
	Rep int
	// Key is the scenario key, suffixed with "#rep" for replications.
	Key string
	// Result holds the simulation outcome; nil when Err is set.
	Result *cellnet.Result
	// Extra is whatever the scenario's Post hook returned.
	Extra any
	// Err is non-nil when the point failed: an invalid config, a
	// captured worker panic (*PanicError), or the context's error for
	// points canceled before or during their run.
	Err error
	// Wall is the real time the point took; Events the simulation
	// events it fired. Unlike Result these vary run to run — exclude
	// them from any determinism comparison.
	Wall   time.Duration
	Events uint64
}

// PanicError wraps a panic captured in a worker so one bad point cannot
// kill the sweep.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: worker panic: %v\n%s", e.Value, e.Stack)
}

// Progress is one per-point notification to a Sink.
type Progress struct {
	// Done counts finished points (including failed ones); Total is the
	// expanded point count.
	Done, Total int
	// Point is the finished point.
	Point *PointResult
}

// EventsPerSec is the point's simulation throughput.
func (p Progress) EventsPerSec() float64 {
	if p.Point == nil || p.Point.Wall <= 0 {
		return 0
	}
	return float64(p.Point.Events) / p.Point.Wall.Seconds()
}

// Sink observes sweep progress. The Runner serializes calls, so
// implementations need no locking of their own.
type Sink interface {
	Point(Progress)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Progress)

// Point implements Sink.
func (f SinkFunc) Point(p Progress) { f(p) }

// Runner executes scenario lists. The zero value is ready to use.
type Runner struct {
	// Parallel is the worker count; zero or negative means GOMAXPROCS.
	Parallel int
	// Sink, when non-nil, receives a Progress per finished point.
	Sink Sink
	// Chunks is how many slices each point's duration is cut into for
	// cancellation checks (default 32): a canceled context stops a
	// running point at the next slice boundary instead of after the
	// full run. Slicing does not affect results — the event kernel
	// fires the same events either way.
	Chunks int
}

// point is one expanded (scenario, rep) cell.
type point struct {
	scenario int
	rep      int
	key      string
	cfg      cellnet.Config
	duration float64
	post     func(*cellnet.Network, *cellnet.Result) any
}

// expand flattens scenarios into points, scenario-major.
func expand(scenarios []Scenario) ([]point, error) {
	var points []point
	for si, s := range scenarios {
		key := s.Key
		if key == "" {
			key = fmt.Sprintf("scenario-%d", si)
		}
		if s.reps() > 1 && s.Config.Backbone != nil {
			return nil, fmt.Errorf("runner: scenario %q: Reps=%d with a shared Backbone "+
				"(build one Backbone per run instead)", key, s.Reps)
		}
		for rep := 0; rep < s.reps(); rep++ {
			p := point{
				scenario: si,
				rep:      rep,
				key:      key,
				cfg:      s.Config,
				duration: s.Duration,
				post:     s.Post,
			}
			if s.reps() > 1 {
				p.key = fmt.Sprintf("%s#%d", key, rep)
				p.cfg.Seed = s.Config.Seed + uint64(rep)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// Run executes every scenario point and returns one PointResult per
// point, ordered by point index regardless of completion order. On
// cancellation it returns the context's error together with partial
// results: points that finished before the cancel carry their Result,
// the rest carry the context error in Err. A panicking point is
// converted to an error on that point without affecting the others.
func (r *Runner) Run(ctx context.Context, scenarios []Scenario) ([]PointResult, error) {
	points, err := expand(scenarios)
	if err != nil {
		return nil, err
	}
	out := make([]PointResult, len(points))
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}

	var (
		next   atomic.Int64
		done   atomic.Int64
		sinkMu sync.Mutex
		wg     sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(points) {
					return
				}
				out[i] = r.runPoint(ctx, points[i], i)
				n := int(done.Add(1))
				if r.Sink != nil {
					sinkMu.Lock()
					r.Sink.Point(Progress{Done: n, Total: len(points), Point: &out[i]})
					sinkMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// runPoint executes one point, capturing panics as errors.
func (r *Runner) runPoint(ctx context.Context, p point, i int) (res PointResult) {
	res = PointResult{Index: i, Scenario: p.scenario, Rep: p.rep, Key: p.key}
	defer func() {
		if v := recover(); v != nil {
			res.Result = nil
			res.Extra = nil
			res.Err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	// Wall-clock here feeds only PointResult.Wall (progress sinks and
	// operator diagnostics), never Result or Report bytes — the golden
	// corpus stays byte-identical whatever this reads. Read through
	// internal/clock, the module's one approved wall-clock source.
	wall := clock.Wall{}
	start := wall.Now()
	n, err := cellnet.New(p.cfg)
	if err != nil {
		res.Err = fmt.Errorf("runner: %s: %w", p.key, err)
		return res
	}
	chunks := r.Chunks
	if chunks <= 0 {
		chunks = 32
	}
	for c := 1; c <= chunks; c++ {
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		end := p.duration * float64(c) / float64(chunks)
		if c == chunks {
			end = p.duration
		}
		n.RunUntil(end)
	}
	res.Result = n.Snapshot()
	res.Events = n.EventsFired()
	res.Wall = wall.Since(start)
	if p.post != nil {
		res.Extra = p.post(n, res.Result)
	}
	return res
}

// FirstError returns the first point error in index order, or nil.
func FirstError(points []PointResult) error {
	for i := range points {
		if points[i].Err != nil {
			return fmt.Errorf("%s: %w", points[i].Key, points[i].Err)
		}
	}
	return nil
}

// Results projects the point list onto its Results, in point order.
// Callers that already checked FirstError can index it safely.
func Results(points []PointResult) []*cellnet.Result {
	out := make([]*cellnet.Result, len(points))
	for i := range points {
		out[i] = points[i].Result
	}
	return out
}

// Summary aggregates a finished sweep for progress reporting.
type Summary struct {
	// Points is the expanded point count, Errored how many failed.
	Points, Errored int
	// Events totals simulation events across points; Work totals the
	// per-point wall time (CPU-seconds of simulation, not elapsed time).
	Events uint64
	Work   time.Duration
}

// Summarize folds a point list into a Summary.
func Summarize(points []PointResult) Summary {
	var s Summary
	s.Points = len(points)
	for i := range points {
		if points[i].Err != nil {
			s.Errored++
		}
		s.Events += points[i].Events
		s.Work += points[i].Wall
	}
	return s
}
