package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
	"cellqos/internal/wired"
)

// testConfig builds a small paper-style ring scenario.
func testConfig(load float64, seed uint64) cellnet.Config {
	top := topology.Ring(6)
	cfg := cellnet.PaperBase()
	cfg.Topology = top
	cfg.Policy = core.AC3
	cfg.Mix = traffic.Mix{VoiceRatio: 1.0}
	cfg.Mobility = &mobility.Linear{Top: top, DiameterKm: 1, Speed: mobility.HighMobility}
	cfg.Schedule = traffic.Constant{Lambda: traffic.RateForLoad(load, cfg.Mix, cfg.MeanLifetime), MinKmh: 80, MaxKmh: 120}
	cfg.Seed = seed
	return cfg
}

// fingerprint summarizes a result's simulation-determined content
// (excluding wall time, which varies run to run).
func fingerprint(p PointResult) string {
	r := p.Result
	if r == nil {
		return fmt.Sprintf("err=%v", p.Err)
	}
	return fmt.Sprintf("key=%s total=%+v pcb=%v phd=%v ncalc=%v avgbr=%v avgbu=%v events=%d",
		p.Key, r.Total, r.PCB, r.PHD, r.NCalc, r.AvgBr, r.AvgBu, p.Events)
}

func sweep(t *testing.T, parallel, chunks int) []PointResult {
	t.Helper()
	var scens []Scenario
	for i := 0; i < 8; i++ {
		load := 100 + 25*float64(i)
		scens = append(scens, Scenario{
			Key:      fmt.Sprintf("load%g", load),
			Config:   testConfig(load, 1),
			Duration: 300,
		})
	}
	r := &Runner{Parallel: parallel, Chunks: chunks}
	points, err := r.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(points); err != nil {
		t.Fatal(err)
	}
	return points
}

// TestDeterministicAcrossWorkers is the runner's core guarantee: the
// same scenario list and seed produce identical results at Parallel=1
// and Parallel=8, and regardless of the cancellation-check slicing.
func TestDeterministicAcrossWorkers(t *testing.T) {
	base := sweep(t, 1, 1)
	for _, variant := range []struct{ parallel, chunks int }{{8, 1}, {8, 32}, {3, 7}} {
		got := sweep(t, variant.parallel, variant.chunks)
		if len(got) != len(base) {
			t.Fatalf("point count %d != %d", len(got), len(base))
		}
		for i := range base {
			if fingerprint(got[i]) != fingerprint(base[i]) {
				t.Errorf("parallel=%d chunks=%d point %d:\n got %s\nwant %s",
					variant.parallel, variant.chunks, i, fingerprint(got[i]), fingerprint(base[i]))
			}
		}
	}
}

// TestResultOrderIsPointOrder checks results come back merged by index
// even though completion order differs (long point first).
func TestResultOrderIsPointOrder(t *testing.T) {
	scens := []Scenario{
		{Key: "slow", Config: testConfig(300, 1), Duration: 400},
		{Key: "fast", Config: testConfig(60, 1), Duration: 50},
	}
	r := &Runner{Parallel: 2}
	points, err := r.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Key != "slow" || points[1].Key != "fast" {
		t.Fatalf("order broken: %s, %s", points[0].Key, points[1].Key)
	}
	for i, p := range points {
		if p.Index != i {
			t.Errorf("point %d has Index %d", i, p.Index)
		}
	}
}

// TestCancellationReturnsPartialResults cancels after the first point
// completes: the sweep returns the context error, finished points keep
// their results, and the rest carry the error.
func TestCancellationReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var scens []Scenario
	for i := 0; i < 4; i++ {
		scens = append(scens, Scenario{Key: fmt.Sprintf("p%d", i), Config: testConfig(150, 1), Duration: 2000})
	}
	r := &Runner{
		Parallel: 1,
		Sink:     SinkFunc(func(p Progress) { cancel() }), // cancel as soon as anything finishes
	}
	points, err := r.Run(ctx, scens)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if points[0].Err != nil || points[0].Result == nil {
		t.Fatalf("first point should have completed: %+v", points[0].Err)
	}
	var canceled int
	for _, p := range points[1:] {
		if errors.Is(p.Err, context.Canceled) && p.Result == nil {
			canceled++
		}
	}
	if canceled != len(points)-1 {
		t.Fatalf("canceled points = %d, want %d", canceled, len(points)-1)
	}
	if s := Summarize(points); s.Errored != canceled || s.Points != len(points) {
		t.Fatalf("summary %+v inconsistent with %d canceled", s, canceled)
	}
}

// TestCancellationMidPoint verifies a canceled context stops a running
// point at a slice boundary instead of completing the whole run.
func TestCancellationMidPoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the run even starts
	r := &Runner{Parallel: 1}
	points, err := r.Run(ctx, []Scenario{{Key: "x", Config: testConfig(150, 1), Duration: 1e9}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if points[0].Result != nil || !errors.Is(points[0].Err, context.Canceled) {
		t.Fatalf("point should be canceled: %+v", points[0])
	}
}

// TestPanicIsolatedToPoint: a panicking point becomes an error on that
// point while the rest of the sweep completes normally.
func TestPanicIsolatedToPoint(t *testing.T) {
	boom := Scenario{Key: "boom", Config: testConfig(100, 1), Duration: 50}
	boom.Post = func(*cellnet.Network, *cellnet.Result) any { panic("kaboom") }
	scens := []Scenario{
		{Key: "ok0", Config: testConfig(100, 1), Duration: 50},
		boom,
		{Key: "ok1", Config: testConfig(100, 1), Duration: 50},
	}
	r := &Runner{Parallel: 2}
	points, err := r.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Err != nil || points[2].Err != nil {
		t.Fatalf("healthy points errored: %v / %v", points[0].Err, points[2].Err)
	}
	var pe *PanicError
	if !errors.As(points[1].Err, &pe) {
		t.Fatalf("point 1 err = %v, want *PanicError", points[1].Err)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Fatalf("panic error lost the value: %v", pe)
	}
	if points[1].Result != nil {
		t.Fatal("panicked point kept a partial Result")
	}
}

// TestInvalidConfigIsPointError: a bad config fails its point, not the
// sweep.
func TestInvalidConfigIsPointError(t *testing.T) {
	bad := testConfig(100, 1)
	bad.Capacity = -1
	scens := []Scenario{
		{Key: "bad", Config: bad, Duration: 50},
		{Key: "good", Config: testConfig(100, 1), Duration: 50},
	}
	r := &Runner{}
	points, err := r.Run(context.Background(), scens)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Err == nil {
		t.Fatal("invalid config did not error")
	}
	if points[1].Err != nil || points[1].Result == nil {
		t.Fatalf("good point affected: %v", points[1].Err)
	}
	if err := FirstError(points); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("FirstError = %v, want the bad point's error", err)
	}
}

// TestRepsExpandWithDerivedSeeds: Reps=3 yields three points whose
// seeds differ, so their trajectories diverge.
func TestRepsExpandWithDerivedSeeds(t *testing.T) {
	r := &Runner{Parallel: 3}
	points, err := r.Run(context.Background(), []Scenario{
		{Key: "rep", Config: testConfig(300, 10), Duration: 300, Reps: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(points); err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	for i, p := range points {
		if p.Rep != i || p.Scenario != 0 {
			t.Fatalf("point %d: rep=%d scenario=%d", i, p.Rep, p.Scenario)
		}
		if want := fmt.Sprintf("rep#%d", i); p.Key != want {
			t.Fatalf("key %q, want %q", p.Key, want)
		}
	}
	if points[0].Result.Total == points[1].Result.Total &&
		points[1].Result.Total == points[2].Result.Total {
		t.Fatal("all three replications produced identical counters; seeds not derived")
	}
}

// TestRepsRejectSharedBackbone: replicating a scenario whose config
// carries a Backbone would share mutable state across Networks.
func TestRepsRejectSharedBackbone(t *testing.T) {
	cfg := testConfig(100, 1)
	cfg.Backbone = wired.MeshOfBSs(cfg.Topology, 1000, 1000, wired.FullReroute)
	r := &Runner{}
	_, err := r.Run(context.Background(), []Scenario{{Key: "bb", Config: cfg, Duration: 10, Reps: 2}})
	if err == nil || !strings.Contains(err.Error(), "Backbone") {
		t.Fatalf("err = %v, want shared-backbone rejection", err)
	}
}

// TestPostRunsAndStoresExtra: the Post hook sees the live network and
// its return value lands in Extra.
func TestPostRunsAndStoresExtra(t *testing.T) {
	s := Scenario{Key: "post", Config: testConfig(150, 1), Duration: 100}
	s.Post = func(n *cellnet.Network, res *cellnet.Result) any {
		if n == nil || res == nil {
			t.Error("Post called without network or result")
		}
		return n.EventsFired()
	}
	r := &Runner{}
	points, err := r.Run(context.Background(), []Scenario{s})
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := points[0].Extra.(uint64)
	if !ok || ev == 0 || ev != points[0].Events {
		t.Fatalf("Extra = %v, want events %d", points[0].Extra, points[0].Events)
	}
}

// TestSinkSeesEveryPoint: the progress sink fires once per point with
// monotone Done counts.
func TestSinkSeesEveryPoint(t *testing.T) {
	var got []int
	r := &Runner{
		Parallel: 4,
		Sink:     SinkFunc(func(p Progress) { got = append(got, p.Done) }),
	}
	var scens []Scenario
	for i := 0; i < 6; i++ {
		scens = append(scens, Scenario{Config: testConfig(100, uint64(i+1)), Duration: 50})
	}
	if _, err := r.Run(context.Background(), scens); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scens) {
		t.Fatalf("sink calls = %d, want %d", len(got), len(scens))
	}
	for i, d := range got {
		if d != i+1 {
			t.Fatalf("Done sequence %v not monotone", got)
		}
	}
}
