package wired

import (
	"fmt"

	"cellqos/internal/topology"
)

// RerouteStrategy selects how a connection's wired path changes on
// hand-off.
type RerouteStrategy int

const (
	// FullReroute computes a fresh minimum-hop path from the new BS and
	// atomically swaps reservations (make-before-break: the new path is
	// reserved while the old one is still held, then the old one is
	// released — links shared by both paths must briefly carry both).
	FullReroute RerouteStrategy = iota
	// AnchorExtend keeps the existing path and prepends the segment from
	// the new BS to the old BS (the anchor), trading backbone bandwidth
	// for minimal re-routing signaling.
	AnchorExtend
)

// String names the strategy.
func (s RerouteStrategy) String() string {
	switch s {
	case FullReroute:
		return "full-reroute"
	case AnchorExtend:
		return "anchor-extend"
	default:
		return fmt.Sprintf("RerouteStrategy(%d)", int(s))
	}
}

// Backbone binds a cell topology to a wired graph: every cell has a BS
// node, and connections hold routed, reserved paths from their serving
// BS to a gateway. It tracks wired-level blocking and drop counts.
type Backbone struct {
	g        *Graph
	bsNode   []NodeID // cell -> BS node
	strategy RerouteStrategy

	// Blocked counts new connections refused for lack of wired capacity;
	// Dropped counts hand-offs that failed re-routing.
	Blocked uint64
	Dropped uint64
	// Reroutes counts successful hand-off re-routes.
	Reroutes uint64

	// attached marks the backbone as owned by a simulation run. Graph
	// reservations and the counters above are mutable and unsynchronized,
	// so a Backbone may belong to at most one Network ("one Network per
	// goroutine"); sharing one across concurrent runs would race.
	attached bool
}

// Attach claims the backbone for a single simulation run. It fails if
// the backbone already belongs to one — build a fresh Backbone per
// Network instead of reusing the pointer.
func (b *Backbone) Attach() error {
	if b.attached {
		return fmt.Errorf("wired: backbone already attached to a network " +
			"(build one Backbone per Network; they cannot be shared)")
	}
	b.attached = true
	return nil
}

// NewBackbone wraps a graph whose BS nodes are already mapped to cells.
// bsNode[i] is the wired node of cell i's base station.
func NewBackbone(g *Graph, bsNode []NodeID, strategy RerouteStrategy) *Backbone {
	if len(g.Gateways()) == 0 {
		panic("wired: backbone without a gateway")
	}
	for cell, n := range bsNode {
		if !g.valid(n) || g.Kind(n) != BS {
			panic(fmt.Sprintf("wired: cell %d mapped to non-BS node %d", cell, n))
		}
	}
	return &Backbone{g: g, bsNode: bsNode, strategy: strategy}
}

// Graph exposes the underlying graph.
func (b *Backbone) Graph() *Graph { return b.g }

// Cells returns how many cells have mapped BS nodes.
func (b *Backbone) Cells() int { return len(b.bsNode) }

// BSNode returns the wired node of a cell's base station.
func (b *Backbone) BSNode(cell topology.CellID) NodeID { return b.bsNode[cell] }

// Connect routes and reserves a path for a new connection of bw BUs at
// the given cell. ok=false means the backbone blocked the connection.
func (b *Backbone) Connect(cell topology.CellID, bw int) (Path, bool) {
	p, ok := b.g.RouteToGateway(b.bsNode[cell], bw)
	if !ok || !b.g.Reserve(p, bw) {
		b.Blocked++
		return Path{}, false
	}
	return p, true
}

// Disconnect releases a connection's path.
func (b *Backbone) Disconnect(p Path, bw int) { b.g.Release(p, bw) }

// HandOff re-routes a connection from its current path to the new cell
// per the configured strategy. On success it returns the new path; on
// failure the old path remains reserved and ok is false (the caller
// decides whether the hand-off drops).
func (b *Backbone) HandOff(old Path, newCell topology.CellID, bw int) (Path, bool) {
	newBS := b.bsNode[newCell]
	switch b.strategy {
	case FullReroute:
		p, ok := b.g.RouteToGateway(newBS, bw)
		if !ok || !b.g.Reserve(p, bw) {
			b.Dropped++
			return Path{}, false
		}
		b.g.Release(old, bw)
		b.Reroutes++
		return p, true
	case AnchorExtend:
		// Route from the new BS to the head of the existing path (the
		// previous serving BS or an earlier anchor), then splice.
		anchor := old.Nodes[0]
		seg, ok := b.g.Route(newBS, bw, func(n NodeID) bool { return n == anchor })
		if !ok || !b.g.Reserve(seg, bw) {
			b.Dropped++
			return Path{}, false
		}
		b.Reroutes++
		joined := Path{
			Links: append(append([]int{}, seg.Links...), old.Links...),
			Nodes: append(append([]NodeID{}, seg.Nodes...), old.Nodes[1:]...),
		}
		return joined, true
	default:
		panic(fmt.Sprintf("wired: unknown strategy %v", b.strategy))
	}
}

// StarOfMSCs builds the deployment of Fig. 1(a) for a cell topology:
// cells are partitioned among nMSC switching centers (round-robin), each
// BS links to its MSC with bsLinkCap, MSCs link to a single gateway with
// mscLinkCap. Returns the backbone with the given re-route strategy.
func StarOfMSCs(top *topology.Topology, nMSC, bsLinkCap, mscLinkCap int, strategy RerouteStrategy) *Backbone {
	if nMSC < 1 {
		panic("wired: need at least one MSC")
	}
	g := NewGraph()
	gw := g.AddNode(Gateway)
	mscs := make([]NodeID, nMSC)
	for i := range mscs {
		mscs[i] = g.AddNode(MSC)
		g.AddLink(mscs[i], gw, mscLinkCap)
	}
	bs := make([]NodeID, top.NumCells())
	for c := 0; c < top.NumCells(); c++ {
		bs[c] = g.AddNode(BS)
		g.AddLink(bs[c], mscs[c%nMSC], bsLinkCap)
	}
	return NewBackbone(g, bs, strategy)
}

// MeshOfBSs builds the Fig. 1(b) deployment: BSs are directly linked to
// their cell neighbors with interCap, and every BS also links to a
// single gateway-attached MSC with upCap.
func MeshOfBSs(top *topology.Topology, interCap, upCap int, strategy RerouteStrategy) *Backbone {
	g := NewGraph()
	gw := g.AddNode(Gateway)
	msc := g.AddNode(MSC)
	g.AddLink(msc, gw, upCap*top.NumCells())
	bs := make([]NodeID, top.NumCells())
	for c := 0; c < top.NumCells(); c++ {
		bs[c] = g.AddNode(BS)
		g.AddLink(bs[c], msc, upCap)
	}
	for c := 0; c < top.NumCells(); c++ {
		for _, nb := range top.Neighbors(topology.CellID(c)) {
			if int(nb) > c {
				g.AddLink(bs[c], bs[nb], interCap)
			}
		}
	}
	return NewBackbone(g, bs, strategy)
}
