// Package wired models the cellular system's wired backbone (paper §2,
// Fig. 1): base stations, mobile switching centers and gateway nodes
// joined by capacitated links. A connection occupies bandwidth along a
// routed path from its serving BS to a gateway; a hand-off re-routes the
// path. The paper defers wired-link reservation to future work ("our
// scheme can be extended easily to include wired link bandwidth
// reservation by considering the routing and re-routing inside the wired
// network", §2/§7); this package is that extension.
//
// Two re-routing strategies are provided: FullReroute computes a fresh
// path from the new BS, and AnchorExtend keeps the old path and appends
// the inter-BS segment — the classic anchor/extension trade-off (lower
// signaling and no mid-call path change, but longer paths that waste
// backbone bandwidth).
package wired

import (
	"fmt"
)

// NodeID identifies a backbone node.
type NodeID int

// NodeKind classifies backbone nodes.
type NodeKind int

const (
	// BS is a base-station node (one per cell).
	BS NodeKind = iota
	// MSC is a mobile switching center.
	MSC
	// Gateway connects the cellular system to the wide-area network;
	// every connection's wired path terminates at a gateway.
	Gateway
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case BS:
		return "bs"
	case MSC:
		return "msc"
	case Gateway:
		return "gateway"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// link is one undirected capacitated edge.
type link struct {
	a, b     NodeID
	capacity int
	used     int
}

// Graph is a mutable backbone topology. Build it up front; concurrent
// use is not supported.
type Graph struct {
	kinds    []NodeKind
	links    []link
	incident [][]int // node -> indices into links
	gateways []NodeID
}

// NewGraph returns an empty backbone.
func NewGraph() *Graph { return &Graph{} }

// AddNode creates a node of the given kind and returns its ID.
func (g *Graph) AddNode(kind NodeKind) NodeID {
	id := NodeID(len(g.kinds))
	g.kinds = append(g.kinds, kind)
	g.incident = append(g.incident, nil)
	if kind == Gateway {
		g.gateways = append(g.gateways, id)
	}
	return id
}

// AddLink joins two nodes with an undirected link of the given capacity
// in BUs, returning the link index.
func (g *Graph) AddLink(a, b NodeID, capacity int) int {
	if !g.valid(a) || !g.valid(b) {
		panic(fmt.Sprintf("wired: bad link endpoints %d-%d", a, b))
	}
	if a == b {
		panic("wired: self-link")
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("wired: non-positive capacity %d", capacity))
	}
	idx := len(g.links)
	g.links = append(g.links, link{a: a, b: b, capacity: capacity})
	g.incident[a] = append(g.incident[a], idx)
	g.incident[b] = append(g.incident[b], idx)
	return idx
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.kinds) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.kinds) }

// NumLinks returns the link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Kind returns a node's kind.
func (g *Graph) Kind(n NodeID) NodeKind {
	if !g.valid(n) {
		panic(fmt.Sprintf("wired: bad node %d", n))
	}
	return g.kinds[n]
}

// Gateways lists the gateway nodes.
func (g *Graph) Gateways() []NodeID { return g.gateways }

// LinkLoad returns a link's (used, capacity).
func (g *Graph) LinkLoad(idx int) (used, capacity int) {
	l := &g.links[idx]
	return l.used, l.capacity
}

// other returns the far endpoint of link idx as seen from n.
func (g *Graph) other(idx int, n NodeID) NodeID {
	l := &g.links[idx]
	if l.a == n {
		return l.b
	}
	return l.a
}

// Path is a wired route: the link indices from a BS toward a gateway, in
// order, plus the node sequence for diagnostics.
type Path struct {
	Links []int
	Nodes []NodeID // len(Links)+1, starting at the BS
}

// Valid reports whether the path is non-degenerate.
func (p Path) Valid() bool { return len(p.Nodes) >= 1 && len(p.Nodes) == len(p.Links)+1 }

// Last returns the path's terminal node.
func (p Path) Last() NodeID { return p.Nodes[len(p.Nodes)-1] }

// Route finds a minimum-hop path from src to any node satisfying goal,
// using only links with at least bw free capacity. It returns ok=false
// when no such path exists. Deterministic: BFS explores links in
// insertion order.
func (g *Graph) Route(src NodeID, bw int, goal func(NodeID) bool) (Path, bool) {
	if !g.valid(src) {
		panic(fmt.Sprintf("wired: bad source %d", src))
	}
	if goal(src) {
		return Path{Nodes: []NodeID{src}}, true
	}
	prevLink := make([]int, len(g.kinds))
	for i := range prevLink {
		prevLink[i] = -1
	}
	visited := make([]bool, len(g.kinds))
	visited[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, li := range g.incident[n] {
			l := &g.links[li]
			if l.capacity-l.used < bw {
				continue
			}
			m := g.other(li, n)
			if visited[m] {
				continue
			}
			visited[m] = true
			prevLink[m] = li
			if goal(m) {
				return g.assemble(src, m, prevLink), true
			}
			queue = append(queue, m)
		}
	}
	return Path{}, false
}

// RouteToGateway finds a minimum-hop feasible path to any gateway.
func (g *Graph) RouteToGateway(src NodeID, bw int) (Path, bool) {
	return g.Route(src, bw, func(n NodeID) bool { return g.kinds[n] == Gateway })
}

// assemble walks prevLink pointers back from dst to src.
func (g *Graph) assemble(src, dst NodeID, prevLink []int) Path {
	var revLinks []int
	var revNodes []NodeID
	n := dst
	for n != src {
		li := prevLink[n]
		revLinks = append(revLinks, li)
		revNodes = append(revNodes, n)
		n = g.other(li, n)
	}
	p := Path{
		Links: make([]int, 0, len(revLinks)),
		Nodes: make([]NodeID, 0, len(revNodes)+1),
	}
	p.Nodes = append(p.Nodes, src)
	for i := len(revLinks) - 1; i >= 0; i-- {
		p.Links = append(p.Links, revLinks[i])
		p.Nodes = append(p.Nodes, revNodes[i])
	}
	return p
}

// Reserve claims bw BUs on every link of the path, all-or-nothing. It
// returns false (reserving nothing) if any link lacks room.
func (g *Graph) Reserve(p Path, bw int) bool {
	if bw <= 0 {
		panic(fmt.Sprintf("wired: non-positive reservation %d", bw))
	}
	for _, li := range p.Links {
		l := &g.links[li]
		if l.capacity-l.used < bw {
			return false
		}
	}
	for _, li := range p.Links {
		g.links[li].used += bw
	}
	return true
}

// Release frees bw BUs on every link of the path.
func (g *Graph) Release(p Path, bw int) {
	for _, li := range p.Links {
		l := &g.links[li]
		if l.used < bw {
			panic(fmt.Sprintf("wired: releasing %d from link %d with %d used", bw, li, l.used))
		}
		l.used -= bw
	}
}

// TotalUsed sums used bandwidth over all links (backbone load metric).
func (g *Graph) TotalUsed() int {
	sum := 0
	for i := range g.links {
		sum += g.links[i].used
	}
	return sum
}
