package wired

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cellqos/internal/topology"
)

// line builds gw — msc — bs0 — (and bs1 hanging off msc).
func simpleGraph() (*Graph, NodeID, NodeID, NodeID) {
	g := NewGraph()
	gw := g.AddNode(Gateway)
	msc := g.AddNode(MSC)
	bs0 := g.AddNode(BS)
	bs1 := g.AddNode(BS)
	g.AddLink(gw, msc, 100)
	g.AddLink(msc, bs0, 50)
	g.AddLink(msc, bs1, 50)
	return g, gw, bs0, bs1
}

func TestRouteToGateway(t *testing.T) {
	g, gw, bs0, _ := simpleGraph()
	p, ok := g.RouteToGateway(bs0, 10)
	if !ok {
		t.Fatal("no route")
	}
	if !p.Valid() || len(p.Links) != 2 || p.Last() != gw {
		t.Fatalf("path = %+v", p)
	}
	if p.Nodes[0] != bs0 {
		t.Fatalf("path starts at %d, want %d", p.Nodes[0], bs0)
	}
}

func TestRouteRespectsCapacity(t *testing.T) {
	g, _, bs0, _ := simpleGraph()
	if _, ok := g.RouteToGateway(bs0, 51); ok {
		t.Fatal("routed over a 50-BU link with bw 51")
	}
	p, _ := g.RouteToGateway(bs0, 50)
	if !g.Reserve(p, 50) {
		t.Fatal("reserve failed")
	}
	if _, ok := g.RouteToGateway(bs0, 1); ok {
		t.Fatal("routed through a full link")
	}
}

func TestReserveAllOrNothing(t *testing.T) {
	g, _, bs0, _ := simpleGraph()
	p, _ := g.RouteToGateway(bs0, 10)
	// Fill the BS uplink behind the router's back.
	g.links[1].used = 45
	if g.Reserve(p, 10) {
		t.Fatal("partial-capacity reserve succeeded")
	}
	// No partial state left behind.
	if used, _ := g.LinkLoad(0); used != 0 {
		t.Fatalf("gateway link used = %d after failed reserve", used)
	}
}

func TestReleaseRestoresCapacity(t *testing.T) {
	g, _, bs0, _ := simpleGraph()
	p, _ := g.RouteToGateway(bs0, 50)
	g.Reserve(p, 50)
	g.Release(p, 50)
	if g.TotalUsed() != 0 {
		t.Fatalf("TotalUsed = %d after release", g.TotalUsed())
	}
	if _, ok := g.RouteToGateway(bs0, 50); !ok {
		t.Fatal("capacity not restored")
	}
}

func TestOverReleasePanics(t *testing.T) {
	g, _, bs0, _ := simpleGraph()
	p, _ := g.RouteToGateway(bs0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	g.Release(p, 10)
}

func TestRouteGoalAtSource(t *testing.T) {
	g, gw, _, _ := simpleGraph()
	p, ok := g.Route(gw, 10, func(n NodeID) bool { return n == gw })
	if !ok || len(p.Links) != 0 || p.Last() != gw {
		t.Fatalf("degenerate route = %+v, %v", p, ok)
	}
}

func TestRouteMinHop(t *testing.T) {
	// Two routes to the gateway: 2 hops via mscA, 3 hops via mscB chain.
	g := NewGraph()
	gw := g.AddNode(Gateway)
	mA := g.AddNode(MSC)
	mB1 := g.AddNode(MSC)
	mB2 := g.AddNode(MSC)
	bs := g.AddNode(BS)
	g.AddLink(bs, mA, 10)
	g.AddLink(mA, gw, 10)
	g.AddLink(bs, mB1, 10)
	g.AddLink(mB1, mB2, 10)
	g.AddLink(mB2, gw, 10)
	p, ok := g.RouteToGateway(bs, 5)
	if !ok || len(p.Links) != 2 {
		t.Fatalf("min-hop path has %d links, want 2", len(p.Links))
	}
	// Saturate the short route: BFS must fall back to the long one.
	g.Reserve(p, 10)
	p2, ok := g.RouteToGateway(bs, 5)
	if !ok || len(p2.Links) != 3 {
		t.Fatalf("fallback path has %d links (%v), want 3", len(p2.Links), ok)
	}
}

func TestBackboneConnectDisconnect(t *testing.T) {
	top := topology.Ring(4)
	b := StarOfMSCs(top, 2, 20, 40, FullReroute)
	p, ok := b.Connect(0, 10)
	if !ok {
		t.Fatal("connect blocked on an empty backbone")
	}
	if b.Graph().TotalUsed() == 0 {
		t.Fatal("no bandwidth reserved")
	}
	b.Disconnect(p, 10)
	if b.Graph().TotalUsed() != 0 {
		t.Fatal("bandwidth leaked after disconnect")
	}
}

func TestBackboneBlocksWhenFull(t *testing.T) {
	top := topology.Ring(4)
	b := StarOfMSCs(top, 1, 8, 100, FullReroute)
	if _, ok := b.Connect(0, 4); !ok {
		t.Fatal("first connect blocked")
	}
	if _, ok := b.Connect(0, 4); !ok {
		t.Fatal("second connect blocked")
	}
	if _, ok := b.Connect(0, 4); ok {
		t.Fatal("connect over BS uplink capacity succeeded")
	}
	if b.Blocked != 1 {
		t.Fatalf("Blocked = %d, want 1", b.Blocked)
	}
}

func TestFullRerouteHandOff(t *testing.T) {
	top := topology.Ring(4)
	b := StarOfMSCs(top, 2, 20, 40, FullReroute)
	p, _ := b.Connect(0, 10)
	before := b.Graph().TotalUsed()
	p2, ok := b.HandOff(p, 1, 10)
	if !ok {
		t.Fatal("hand-off re-route failed")
	}
	if p2.Nodes[0] != b.BSNode(1) {
		t.Fatalf("new path starts at %d, want BS of cell 1", p2.Nodes[0])
	}
	// Full re-route: same backbone footprint (both 2-hop paths).
	if got := b.Graph().TotalUsed(); got != before {
		t.Fatalf("TotalUsed = %d, want %d", got, before)
	}
	if b.Reroutes != 1 {
		t.Fatalf("Reroutes = %d, want 1", b.Reroutes)
	}
	b.Disconnect(p2, 10)
	if b.Graph().TotalUsed() != 0 {
		t.Fatal("leak after full-reroute hand-off + disconnect")
	}
}

func TestAnchorExtendHandOff(t *testing.T) {
	top := topology.Ring(4)
	b := MeshOfBSs(top, 30, 30, AnchorExtend)
	p, _ := b.Connect(0, 10)
	baseLinks := len(p.Links)
	p2, ok := b.HandOff(p, 1, 10)
	if !ok {
		t.Fatal("anchor extension failed")
	}
	// The path grew by the BS0–BS1 segment and still starts at BS1.
	if len(p2.Links) != baseLinks+1 {
		t.Fatalf("extended path has %d links, want %d", len(p2.Links), baseLinks+1)
	}
	if p2.Nodes[0] != b.BSNode(1) {
		t.Fatal("extended path doesn't start at the new BS")
	}
	if p2.Last() != p.Last() {
		t.Fatal("anchor extension changed the gateway end")
	}
	b.Disconnect(p2, 10)
	if b.Graph().TotalUsed() != 0 {
		t.Fatal("leak after anchor hand-off + disconnect")
	}
}

func TestHandOffFailureKeepsOldPath(t *testing.T) {
	top := topology.Ring(4)
	b := StarOfMSCs(top, 1, 10, 10, FullReroute)
	p, ok := b.Connect(0, 10) // saturates the MSC-gateway link
	if !ok {
		t.Fatal("connect failed")
	}
	// Full reroute must reserve the new path before releasing the old;
	// the shared MSC—gateway link has no headroom, so the hand-off fails
	// and the old reservation must survive.
	if _, ok := b.HandOff(p, 1, 10); ok {
		t.Fatal("hand-off succeeded without backbone headroom")
	}
	if b.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", b.Dropped)
	}
	used, _ := b.Graph().LinkLoad(0)
	if used != 10 {
		t.Fatalf("old reservation lost: gateway link used = %d", used)
	}
}

func TestStarOfMSCsShape(t *testing.T) {
	top := topology.Ring(10)
	b := StarOfMSCs(top, 3, 20, 60, FullReroute)
	g := b.Graph()
	if g.NumNodes() != 1+3+10 {
		t.Fatalf("nodes = %d, want 14", g.NumNodes())
	}
	if g.NumLinks() != 3+10 {
		t.Fatalf("links = %d, want 13", g.NumLinks())
	}
	for c := topology.CellID(0); c < 10; c++ {
		if g.Kind(b.BSNode(c)) != BS {
			t.Fatalf("cell %d mapped to %v", c, g.Kind(b.BSNode(c)))
		}
	}
}

// Property: random connect/disconnect/hand-off sequences never leak or
// oversubscribe backbone bandwidth.
func TestPropertyBackboneConservation(t *testing.T) {
	top := topology.Ring(6)
	f := func(seed uint64, strategyRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		strategy := RerouteStrategy(strategyRaw % 2)
		b := MeshOfBSs(top, 25, 25, strategy)
		type lease struct {
			p    Path
			bw   int
			cell topology.CellID
		}
		var live []lease
		expected := 0
		for step := 0; step < 300; step++ {
			switch rng.IntN(3) {
			case 0: // connect
				cell := topology.CellID(rng.IntN(6))
				bw := 1 + rng.IntN(4)
				if p, ok := b.Connect(cell, bw); ok {
					live = append(live, lease{p, bw, cell})
					expected += bw * len(p.Links)
				}
			case 1: // disconnect
				if len(live) == 0 {
					continue
				}
				i := rng.IntN(len(live))
				b.Disconnect(live[i].p, live[i].bw)
				expected -= live[i].bw * len(live[i].p.Links)
				live = append(live[:i], live[i+1:]...)
			case 2: // hand-off to a neighbor
				if len(live) == 0 {
					continue
				}
				i := rng.IntN(len(live))
				nbs := top.Neighbors(live[i].cell)
				to := nbs[rng.IntN(len(nbs))]
				if p2, ok := b.HandOff(live[i].p, to, live[i].bw); ok {
					expected += live[i].bw * (len(p2.Links) - len(live[i].p.Links))
					live[i].p = p2
					live[i].cell = to
				}
			}
			if b.Graph().TotalUsed() != expected {
				return false
			}
			for li := 0; li < b.Graph().NumLinks(); li++ {
				used, cap_ := b.Graph().LinkLoad(li)
				if used < 0 || used > cap_ {
					return false
				}
			}
		}
		for _, l := range live {
			b.Disconnect(l.p, l.bw)
		}
		return b.Graph().TotalUsed() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
