// Package golden pins canonical outputs across PRs. A golden file holds
// the exact bytes a computation produced when its behavior was last
// reviewed; the corpus test (corpus_test.go) regenerates every
// experiment's Report.Bytes at reduced scale and fails on any drift with
// a readable first-divergence diff. Report.Bytes is byte-deterministic
// at any worker count (PR 1), which is what makes exact comparison
// meaningful.
//
// Intentional behavior changes regenerate the corpus:
//
//	go test ./internal/golden/ -update
//
// and the resulting testdata/golden/*.golden diffs are reviewed like
// code — they are the paper-reproduction numbers changing.
package golden

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output instead of comparing")

// Updating reports whether -update was requested.
func Updating() bool { return *update }

// Path returns the canonical location of a named golden file, relative
// to the test's working directory (the package directory under go test).
func Path(name string) string { return filepath.Join("testdata", "golden", name+".golden") }

// Check compares got against the stored golden file for name, failing
// the test with a first-divergence diff on mismatch. Under -update it
// rewrites the file instead and never fails.
func Check(t *testing.T, name string, got []byte) {
	t.Helper()
	p := Path(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: wrote %s (%d bytes)", p, len(got))
		return
	}
	want, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("golden: no stored output for %q (generate with: go test ./internal/golden/ -update): %v", name, err)
	}
	if d, ok := Diff(want, got); !ok {
		t.Errorf("golden: %q drifted from %s — simulation semantics changed.\n%s\nIf the change is intentional, regenerate with: go test ./internal/golden/ -update", name, p, d)
	}
}

// Diff compares expected against actual bytes line by line. ok is true
// when they are identical; otherwise the returned report pins the first
// diverging line with both versions, which for Report.Bytes output reads
// as "which table row of which experiment moved".
func Diff(want, got []byte) (report string, ok bool) {
	if bytes.Equal(want, got) {
		return "", true
	}
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first divergence at line %d:\n  want: %s\n  got:  %s\n(%d lines stored, %d lines produced)",
				i+1, wl[i], gl[i], len(wl), len(gl)), false
		}
	}
	// Equal common prefix: one output is a truncation of the other.
	short, long, which := wl, gl, "produced output adds"
	if len(gl) < len(wl) {
		short, long, which = gl, wl, "produced output is missing"
	}
	return fmt.Sprintf("outputs agree for %d lines, then %s %d line(s), starting with:\n  %s",
		len(short), which, len(long)-len(short), long[len(short)]), false
}
