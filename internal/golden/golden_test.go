package golden

import (
	"strings"
	"testing"
)

func TestDiffIdentical(t *testing.T) {
	if d, ok := Diff([]byte("a\nb\n"), []byte("a\nb\n")); !ok || d != "" {
		t.Fatalf("identical inputs reported diff: %q", d)
	}
}

func TestDiffFirstDivergence(t *testing.T) {
	want := []byte("report fig7\nrow 1,0.5\nrow 2,0.7\n")
	got := []byte("report fig7\nrow 1,0.5\nrow 2,0.9\n")
	d, ok := Diff(want, got)
	if ok {
		t.Fatal("differing inputs reported equal")
	}
	for _, frag := range []string{"line 3", "row 2,0.7", "row 2,0.9"} {
		if !strings.Contains(d, frag) {
			t.Errorf("diff %q missing %q", d, frag)
		}
	}
}

func TestDiffTruncation(t *testing.T) {
	// No trailing newlines: a clean truncation shares the full prefix.
	want := []byte("a\nb\nc")
	got := []byte("a\nb")
	d, ok := Diff(want, got)
	if ok {
		t.Fatal("truncated input reported equal")
	}
	if !strings.Contains(d, "missing") || !strings.Contains(d, "c") {
		t.Errorf("truncation diff unreadable: %q", d)
	}
	d, ok = Diff(got, want)
	if ok || !strings.Contains(d, "adds") {
		t.Errorf("extension diff unreadable: %q", d)
	}
}

func TestPathNaming(t *testing.T) {
	if p := Path("fig7"); p != "testdata/golden/fig7.golden" {
		t.Fatalf("Path = %q", p)
	}
}
