package golden

import (
	"fmt"
	"testing"

	"cellqos/internal/audit"
	"cellqos/internal/experiments"
)

// corpusOpt is the corpus's fixed reduced scale. The exact values are
// part of the pinned contract: changing any of them regenerates every
// golden file and discards the accumulated drift signal, so treat edits
// here like golden-file edits — deliberate and reviewed.
func corpusOpt() experiments.Options {
	return experiments.Options{
		Duration:      400,
		TraceDuration: 300,
		Fig14Hours:    8, // through the §5.3 morning ramp; full days are for paper-scale runs
		Loads:         []float64{100, 300},
		Seed:          11,
		Audit:         &audit.Checker{EveryN: 64},
	}
}

// TestGoldenCorpus regenerates all 21 experiments at the corpus scale —
// with the invariant audit attached — and compares each Report.Bytes
// against its stored golden file. Any PR that changes simulation
// semantics, table formatting, or chart rendering fails here with the
// first diverging line; intentional changes regenerate via -update.
func TestGoldenCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus regenerates every experiment")
	}
	all := experiments.All()
	if len(all) != 21 {
		t.Fatalf("experiment registry has %d entries, corpus expects 21 — extend the corpus deliberately", len(all))
	}
	for _, e := range all {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(corpusOpt())
			if err != nil {
				t.Fatal(err)
			}
			Check(t, e.ID, rep.Bytes())
		})
	}
}

// TestGoldenCorpusSharded re-runs the whole corpus on a sharded event
// kernel (zero-latency compat mode) and compares against the same
// golden files: partitioning the kernel must not move a single byte of
// any Report at any shard count. Shards=1 is TestGoldenCorpus itself.
func TestGoldenCorpusSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus regenerates every experiment per shard count")
	}
	if Updating() {
		t.Skip("golden files are written by TestGoldenCorpus")
	}
	for _, shards := range []int{2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			for _, e := range experiments.All() {
				e := e
				t.Run(e.ID, func(t *testing.T) {
					opt := corpusOpt()
					opt.Shards = shards
					rep, err := e.Run(opt)
					if err != nil {
						t.Fatal(err)
					}
					Check(t, e.ID, rep.Bytes())
				})
			}
		})
	}
}
