package traffic

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0)) }

func TestMixSampleRatios(t *testing.T) {
	r := rng(1)
	for _, rvo := range []float64{1.0, 0.8, 0.5, 0.0} {
		m := Mix{VoiceRatio: rvo}
		voice := 0
		const n = 50000
		for i := 0; i < n; i++ {
			c := m.Sample(r)
			if c.Bandwidth != Voice.Bandwidth && c.Bandwidth != Video.Bandwidth {
				t.Fatalf("unknown class %+v", c)
			}
			if c == Voice {
				voice++
			}
		}
		got := float64(voice) / n
		if math.Abs(got-rvo) > 0.01 {
			t.Fatalf("R_vo=%v: sampled voice fraction %v", rvo, got)
		}
	}
}

func TestMixInvalidRatioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("VoiceRatio=1.5 did not panic")
		}
	}()
	Mix{VoiceRatio: 1.5}.Sample(rng(2))
}

func TestMeanBandwidth(t *testing.T) {
	cases := []struct {
		rvo, want float64
	}{{1.0, 1}, {0.5, 2.5}, {0.8, 1.6}, {0.0, 4}}
	for _, c := range cases {
		if got := (Mix{VoiceRatio: c.rvo}).MeanBandwidth(); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("MeanBandwidth(R_vo=%v) = %v, want %v", c.rvo, got, c.want)
		}
	}
}

func TestRateForLoadEq7(t *testing.T) {
	// Paper Eq. 7: L = λ·E[b]·120. For R_vo=1, L=300 ⇒ λ=2.5.
	got := RateForLoad(300, Mix{VoiceRatio: 1}, MeanLifetime)
	if math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("λ = %v, want 2.5", got)
	}
	// R_vo=0.5 ⇒ E[b]=2.5, L=300 ⇒ λ=1.
	got = RateForLoad(300, Mix{VoiceRatio: 0.5}, MeanLifetime)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("λ = %v, want 1", got)
	}
}

func TestLoadRateRoundTrip(t *testing.T) {
	f := func(loadRaw uint16, rvoRaw uint8) bool {
		load := float64(loadRaw) / 100
		mix := Mix{VoiceRatio: float64(rvoRaw) / 255}
		lambda := RateForLoad(load, mix, MeanLifetime)
		return math.Abs(LoadForRate(lambda, mix, MeanLifetime)-load) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLifetimeMean(t *testing.T) {
	r := rng(3)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := Lifetime(r, MeanLifetime)
		if v < 0 {
			t.Fatalf("negative lifetime %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-MeanLifetime) > 1.5 {
		t.Fatalf("mean lifetime %v, want ≈ %v", mean, MeanLifetime)
	}
}

func TestLifetimeBadMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lifetime(mean=0) did not panic")
		}
	}()
	Lifetime(rng(4), 0)
}

func TestConstantSchedule(t *testing.T) {
	c := Constant{Lambda: 2.5, MinKmh: 80, MaxKmh: 120}
	if c.Rate(0) != 2.5 || c.Rate(1e9) != 2.5 {
		t.Fatal("constant rate varies")
	}
	lo, hi := c.Speed(42)
	if lo != 80 || hi != 120 {
		t.Fatalf("Speed = %v,%v", lo, hi)
	}
	if _, ok := c.NextChange(0); ok {
		t.Fatal("constant schedule reported a change")
	}
}

func TestNextArrivalConstantRateMean(t *testing.T) {
	r := rng(5)
	sched := Constant{Lambda: 2.0}
	now, count := 0.0, 0
	for now < 10000 {
		next, ok := NextArrival(r, sched, now)
		if !ok {
			t.Fatal("constant positive rate reported no arrivals")
		}
		if next <= now {
			t.Fatalf("non-increasing arrival %v after %v", next, now)
		}
		now = next
		count++
	}
	rate := float64(count) / 10000
	if math.Abs(rate-2.0) > 0.05 {
		t.Fatalf("empirical rate %v, want ≈ 2", rate)
	}
}

func TestNextArrivalZeroRate(t *testing.T) {
	if _, ok := NextArrival(rng(6), Constant{Lambda: 0}, 0); ok {
		t.Fatal("zero-rate schedule produced an arrival")
	}
}

func TestNextArrivalPiecewiseRespectsBoundaries(t *testing.T) {
	// An hour of zero load followed by load: first arrival must land
	// after the boundary.
	var hours [24]HourSpec
	for i := range hours {
		hours[i] = HourSpec{Load: 0, MeanKmh: 100, SpreadKmh: 20}
	}
	hours[1] = HourSpec{Load: 120, MeanKmh: 50, SpreadKmh: 20}
	d := NewDaily(hours, Mix{VoiceRatio: 1}, MeanLifetime)
	r := rng(7)
	for i := 0; i < 100; i++ {
		at, ok := NextArrival(r, d, 0)
		if !ok {
			t.Fatal("no arrival despite hour-1 load")
		}
		if at < SecondsPerHour || at >= 2*SecondsPerHour {
			t.Fatalf("arrival %v outside loaded hour [3600,7200)", at)
		}
	}
}

func TestNextArrivalPiecewiseRate(t *testing.T) {
	// Empirical rate during a loaded hour should match Eq. 7.
	var hours [24]HourSpec
	for i := range hours {
		hours[i] = HourSpec{Load: 120, MeanKmh: 100, SpreadKmh: 20}
	}
	d := NewDaily(hours, Mix{VoiceRatio: 1}, MeanLifetime) // λ = 1/s
	r := rng(8)
	now, count := 0.0, 0
	for now < 20000 {
		next, ok := NextArrival(r, d, now)
		if !ok {
			t.Fatal("no arrival")
		}
		now = next
		count++
	}
	rate := float64(count) / 20000
	if math.Abs(rate-1.0) > 0.03 {
		t.Fatalf("empirical rate %v, want ≈ 1", rate)
	}
}

func TestDailyHourLookup(t *testing.T) {
	d := PaperDay(Mix{VoiceRatio: 1}, MeanLifetime)
	// 9 a.m. is the morning peak: load 180, mean speed 30.
	lo, hi := d.Speed(9*SecondsPerHour + 10)
	if lo != 10 || hi != 50 {
		t.Fatalf("9am speed range = [%v,%v], want [10,50]", lo, hi)
	}
	if got := d.Rate(9*SecondsPerHour + 10); math.Abs(got-180.0/120) > 1e-12 {
		t.Fatalf("9am rate = %v, want 1.5", got)
	}
	// Second day repeats the first.
	if d.Rate(9*SecondsPerHour) != d.Rate(SecondsPerDay+9*SecondsPerHour) {
		t.Fatal("daily schedule does not repeat")
	}
}

func TestDailyNextChangeIsTopOfHour(t *testing.T) {
	d := PaperDay(Mix{VoiceRatio: 1}, MeanLifetime)
	at, ok := d.NextChange(3600.5)
	if !ok || at != 7200 {
		t.Fatalf("NextChange(3600.5) = %v,%v want 7200,true", at, ok)
	}
	at, _ = d.NextChange(7200)
	if at != 10800 {
		t.Fatalf("NextChange at boundary = %v, want strictly-after 10800", at)
	}
}

func TestPaperDayShape(t *testing.T) {
	d := PaperDay(Mix{VoiceRatio: 1}, MeanLifetime)
	// Peaks at 9 and 17, quiet at 3.
	if !(d.Hour(9).Load > d.Hour(7).Load && d.Hour(9).Load > d.Hour(11).Load) {
		t.Fatal("9am is not a local load peak")
	}
	if !(d.Hour(17).Load > d.Hour(15).Load && d.Hour(17).Load > d.Hour(20).Load) {
		t.Fatal("5pm is not a local load peak")
	}
	if d.Hour(3).Load >= 50 {
		t.Fatal("night load not quiet")
	}
	// Peak-hour speeds are depressed (rush-hour congestion).
	if d.Hour(9).MeanKmh >= d.Hour(3).MeanKmh {
		t.Fatal("peak-hour speed not below night speed")
	}
}

func TestRetryPolicyPaper(t *testing.T) {
	r := rng(9)
	p := PaperRetry
	// First block (nRet=1): retry prob 0.9.
	retries := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if p.ShouldRetry(r, 1) {
			retries++
		}
	}
	got := float64(retries) / n
	if math.Abs(got-0.9) > 0.01 {
		t.Fatalf("retry prob at nRet=1: %v, want 0.9", got)
	}
	// nRet=10 ⇒ prob 0: never retry.
	for i := 0; i < 1000; i++ {
		if p.ShouldRetry(r, 10) {
			t.Fatal("retried at nRet=10 (prob 0)")
		}
	}
}

func TestRetryPolicyDisabled(t *testing.T) {
	p := RetryPolicy{}
	if p.ShouldRetry(rng(10), 1) {
		t.Fatal("disabled policy retried")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("disabled policy invalid: %v", err)
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	bad := RetryPolicy{Enabled: true, WaitSeconds: -1, DecayPerTry: 0.1}
	if bad.Validate() == nil {
		t.Fatal("negative wait validated")
	}
	bad = RetryPolicy{Enabled: true, WaitSeconds: 5, DecayPerTry: 0}
	if bad.Validate() == nil {
		t.Fatal("zero decay validated")
	}
	if PaperRetry.Validate() != nil {
		t.Fatal("paper policy invalid")
	}
}

// Property: retry probability is non-increasing in nRet.
func TestPropertyRetryMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		p := PaperRetry
		const trials = 2000
		prev := 1.0
		for nRet := 1; nRet <= 11; nRet++ {
			c := 0
			for i := 0; i < trials; i++ {
				if p.ShouldRetry(r, nRet) {
					c++
				}
			}
			frac := float64(c) / trials
			if frac > prev+0.05 {
				return false
			}
			prev = frac
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextArrival is strictly increasing and finite for any daily
// schedule hour pattern with at least one loaded hour.
func TestPropertyNextArrivalProgress(t *testing.T) {
	f := func(seed uint64, loads [24]uint8) bool {
		var hours [24]HourSpec
		any := false
		for i, l := range loads {
			hours[i] = HourSpec{Load: float64(l), MeanKmh: 60, SpreadKmh: 20}
			if l > 0 {
				any = true
			}
		}
		if !any {
			hours[0].Load = 10
		}
		d := NewDaily(hours, Mix{VoiceRatio: 0.8}, MeanLifetime)
		r := rng(seed)
		now := 0.0
		for i := 0; i < 200; i++ {
			next, ok := NextArrival(r, d, now)
			if !ok || next <= now || math.IsInf(next, 0) || math.IsNaN(next) {
				return false
			}
			now = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
