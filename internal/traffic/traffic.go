// Package traffic generates connection workload: Poisson new-connection
// arrivals per cell (paper A2), a voice/video class mix (A3),
// exponentially distributed connection lifetimes (A5), offered-load
// arithmetic (Eq. 7), time-of-day schedules for the time-varying
// scenario (§5.3), and the blocked-request retry model.
package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// BU is a bandwidth amount in Bandwidth Units; 1 BU is the bandwidth of a
// voice connection (paper §2).
type BU = int

// Class describes a connection type.
type Class struct {
	Name      string
	Bandwidth BU
}

// The paper's two connection classes (A3).
var (
	Voice = Class{Name: "voice", Bandwidth: 1}
	Video = Class{Name: "video", Bandwidth: 4}
)

// Mix is a two-class voice/video mixture: a new connection is voice with
// probability VoiceRatio (the paper's R_vo), video otherwise.
type Mix struct {
	VoiceRatio float64
}

// Sample draws a connection class.
func (m Mix) Sample(rng *rand.Rand) Class {
	if m.VoiceRatio < 0 || m.VoiceRatio > 1 {
		panic(fmt.Sprintf("traffic: VoiceRatio %v outside [0,1]", m.VoiceRatio))
	}
	if rng.Float64() < m.VoiceRatio {
		return Voice
	}
	return Video
}

// MeanBandwidth returns E[b] in BUs: R_vo·1 + (1−R_vo)·4.
func (m Mix) MeanBandwidth() float64 {
	return m.VoiceRatio*float64(Voice.Bandwidth) + (1-m.VoiceRatio)*float64(Video.Bandwidth)
}

// MeanLifetime is the paper's mean connection lifetime in seconds (A5).
const MeanLifetime = 120.0

// Lifetime draws an exponential connection lifetime with the given mean.
func Lifetime(rng *rand.Rand, mean float64) float64 {
	if mean <= 0 {
		panic("traffic: non-positive mean lifetime")
	}
	return rng.ExpFloat64() * mean
}

// RateForLoad inverts the paper's Eq. 7
//
//	L = λ · E[b] · meanLifetime
//
// returning the per-cell Poisson rate λ (connections/second/cell) that
// produces offered load L (BUs) for the given class mix.
func RateForLoad(load float64, mix Mix, meanLifetime float64) float64 {
	if load < 0 {
		panic("traffic: negative offered load")
	}
	den := mix.MeanBandwidth() * meanLifetime
	if den <= 0 {
		panic("traffic: degenerate mix/lifetime")
	}
	return load / den
}

// LoadForRate is the forward direction of Eq. 7.
func LoadForRate(lambda float64, mix Mix, meanLifetime float64) float64 {
	return lambda * mix.MeanBandwidth() * meanLifetime
}

// NextArrival samples the next Poisson arrival time strictly after now,
// for a (possibly piecewise-constant) rate function given by sched. It
// uses the standard piecewise algorithm: draw an exponential gap at the
// current rate; if it crosses the next rate-change boundary, restart from
// the boundary. ok is false when the rate is zero forever after now
// (no more arrivals).
func NextArrival(rng *rand.Rand, sched Schedule, now float64) (float64, bool) {
	t := now
	for guard := 0; guard < 1_000_000; guard++ {
		rate := sched.Rate(t)
		boundary, hasBoundary := sched.NextChange(t)
		if rate <= 0 {
			if !hasBoundary {
				return 0, false
			}
			t = boundary
			continue
		}
		gap := rng.ExpFloat64() / rate
		if hasBoundary && t+gap >= boundary {
			t = boundary
			continue
		}
		return t + gap, true
	}
	panic("traffic: NextArrival did not converge (pathological schedule)")
}

// Schedule exposes a time-varying per-cell arrival rate and mobile speed
// range. Time is seconds from simulation start.
type Schedule interface {
	// Rate returns λ(t), the Poisson arrival rate at time t.
	Rate(t float64) float64
	// Speed returns the mobile speed range in force at time t, as
	// (minKmh, maxKmh).
	Speed(t float64) (minKmh, maxKmh float64)
	// NextChange returns the first time strictly after t at which Rate or
	// Speed changes; ok is false when they are constant forever after t.
	NextChange(t float64) (float64, bool)
}

// Constant is a Schedule with fixed rate and speed range — the paper's
// stationary traffic/mobility scenario (§5.2).
type Constant struct {
	Lambda         float64
	MinKmh, MaxKmh float64
}

// Rate implements Schedule.
func (c Constant) Rate(float64) float64 { return c.Lambda }

// Speed implements Schedule.
func (c Constant) Speed(float64) (float64, float64) { return c.MinKmh, c.MaxKmh }

// NextChange implements Schedule; a constant schedule never changes.
func (c Constant) NextChange(float64) (float64, bool) { return 0, false }

// RetryPolicy models the time-varying scenario's user behavior: "a
// blocked connection request will be re-requested with probability
// 1 − 0.1·N_ret after waiting 5 seconds, where N_ret is the number of
// times a connection request has been made" (§5.3).
type RetryPolicy struct {
	// Enabled turns retries on; the stationary experiments run without.
	Enabled bool
	// WaitSeconds is the delay before a retry (paper: 5 s).
	WaitSeconds float64
	// DecayPerTry is the per-attempt retry-probability decay (paper: 0.1).
	DecayPerTry float64
}

// PaperRetry is the §5.3 retry behavior.
var PaperRetry = RetryPolicy{Enabled: true, WaitSeconds: 5, DecayPerTry: 0.1}

// ShouldRetry decides whether a user whose request was just blocked for
// the nth time (n ≥ 1 counts all requests made so far) tries again.
func (p RetryPolicy) ShouldRetry(rng *rand.Rand, nRet int) bool {
	if !p.Enabled || nRet < 1 {
		return false
	}
	prob := 1 - p.DecayPerTry*float64(nRet)
	if prob <= 0 {
		return false
	}
	return rng.Float64() < prob
}

// Validate checks policy invariants.
func (p RetryPolicy) Validate() error {
	if !p.Enabled {
		return nil
	}
	if p.WaitSeconds < 0 || math.IsNaN(p.WaitSeconds) {
		return fmt.Errorf("traffic: negative retry wait %v", p.WaitSeconds)
	}
	if p.DecayPerTry <= 0 {
		return fmt.Errorf("traffic: non-positive retry decay %v", p.DecayPerTry)
	}
	return nil
}
