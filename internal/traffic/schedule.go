package traffic

import (
	"fmt"
	"math"
)

// HourSpec is one hour of a daily schedule: the *original* offered load
// L_o generated in each cell during that hour and the mean mobile speed S
// (the speed range in force is [S−20, S+20] km/h, §5.3).
type HourSpec struct {
	Load      float64 // offered load L_o in BUs
	MeanKmh   float64 // mean speed S
	SpreadKmh float64 // half-width of the speed range (paper: 20)
}

// Daily is a Schedule that repeats a 24-entry hourly pattern every day.
// Rates are derived from each hour's offered load via Eq. 7 for the
// scenario's class mix.
type Daily struct {
	hours [24]HourSpec
	mix   Mix
	mean  float64 // mean lifetime
}

// SecondsPerHour and SecondsPerDay are the paper's time-of-day units.
const (
	SecondsPerHour = 3600.0
	SecondsPerDay  = 24 * SecondsPerHour
)

// NewDaily builds a daily schedule from 24 hour specs.
func NewDaily(hours [24]HourSpec, mix Mix, meanLifetime float64) *Daily {
	for h, s := range hours {
		if s.Load < 0 || s.MeanKmh-s.SpreadKmh < 0 {
			panic(fmt.Sprintf("traffic: bad hour %d spec %+v", h, s))
		}
	}
	return &Daily{hours: hours, mix: mix, mean: meanLifetime}
}

func (d *Daily) hourAt(t float64) HourSpec {
	if t < 0 {
		t = 0
	}
	h := int(math.Mod(t, SecondsPerDay) / SecondsPerHour)
	if h > 23 {
		h = 23
	}
	return d.hours[h]
}

// Rate implements Schedule.
func (d *Daily) Rate(t float64) float64 {
	return RateForLoad(d.hourAt(t).Load, d.mix, d.mean)
}

// Speed implements Schedule.
func (d *Daily) Speed(t float64) (float64, float64) {
	s := d.hourAt(t)
	return s.MeanKmh - s.SpreadKmh, s.MeanKmh + s.SpreadKmh
}

// NextChange implements Schedule: the next top of the hour.
func (d *Daily) NextChange(t float64) (float64, bool) {
	if t < 0 {
		return 0, true
	}
	next := (math.Floor(t/SecondsPerHour) + 1) * SecondsPerHour
	return next, true
}

// Hour returns hour h's spec (h in [0,24)).
func (d *Daily) Hour(h int) HourSpec { return d.hours[h] }

// PaperDay transcribes Figure 14(a): rush-hour offered-load peaks around
// 9:00, 13:00 and 17:00–18:00 at depressed speeds, quiet nights at free
// speeds. The exact hourly values are read off the plot (the paper gives
// no table); the shape — peak times, ~180-BU peak load, ~30 km/h peak-hour
// mean speed, 20 km/h half-width — follows the figure and §5.3.
func PaperDay(mix Mix, meanLifetime float64) *Daily {
	ls := [24]HourSpec{
		{20, 100, 20}, {15, 100, 20}, {10, 100, 20}, {10, 100, 20}, // 0-3
		{15, 100, 20}, {20, 100, 20}, {40, 90, 20}, {80, 70, 20}, // 4-7
		{150, 50, 20}, {180, 30, 20}, {100, 60, 20}, {80, 70, 20}, // 8-11
		{120, 60, 20}, {150, 40, 20}, {100, 60, 20}, {80, 70, 20}, // 12-15
		{120, 50, 20}, {180, 30, 20}, {160, 40, 20}, {80, 60, 20}, // 16-19
		{60, 80, 20}, {40, 90, 20}, {30, 100, 20}, {25, 100, 20}, // 20-23
	}
	return NewDaily(ls, mix, meanLifetime)
}
