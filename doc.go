// Package cellqos is a reproduction of "Predictive and Adaptive
// Bandwidth Reservation for Hand-Offs in QoS-Sensitive Cellular
// Networks" (Choi & Shin, SIGCOMM 1998): per-cell hand-off mobility
// estimation, predictive target-reservation bandwidth, adaptive
// estimation-window control, and the AC1/AC2/AC3 admission-control
// schemes, together with the discrete-event cellular-network simulator
// the paper evaluates them on.
//
// See README.md for an overview, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record of every table and
// figure. The top-level bench_test.go exposes one benchmark per
// reproduced table/figure; cmd/experiments regenerates them from the
// command line, fanning scenario points over internal/runner's worker
// pool with identical output at any worker count.
//
// Concurrency invariant: a cellnet.Network and everything it owns is
// confined to a single goroutine. Parallelism happens one Network per
// scenario point (see internal/runner), never inside a Network.
package cellqos
