module cellqos

go 1.22
