// Command bsnet demonstrates the distributed signaling deployment: one
// process hosts a set of base-station nodes that talk to each other over
// real loopback TCP connections (full mesh, Fig. 1(b)) or through a
// Mobile Switching Center relay (star, Fig. 1(a)), and drives admission
// tests through the wire protocol.
//
// Usage:
//
//	bsnet [-cells 10] [-mode mesh|star] [-requests 200] [-load 200] [-audit]
//	bsnet -fault-drop 0.15 -call-timeout 25ms -audit
//	bsnet -fault-partition 0 -fault-fallback guard -breaker-threshold 3
//	bsnet -serve -state-dir /var/lib/bsnet -checkpoint-every 5s -audit
//
// With -serve the process becomes a long-running admission server
// (internal/service): the drive loop runs until SIGINT/SIGTERM (or for
// -serve-events events), periodically checkpointing every estimator's
// hand-off history into -state-dir so a crashed process resumes where
// it left off, and draining in-flight admissions before exiting. The
// exit code distinguishes a clean drain (0) from a failed shutdown (1)
// and a degraded run (3); see DESIGN.md §15.
//
// With -audit every base station's bandwidth ledger is verified against
// the paper's conservation invariants (internal/audit) after the drive;
// a violation fails the run with a structured diagnostic.
//
// The -fault-* flags route every BS-side connection through the
// internal/faults injector (seedable frame drop, corruption, delay, and
// one-way partitions), and the -call-*/-breaker-* flags configure the
// resilience layer that survives it: per-attempt deadlines with bounded
// retry, and per-link circuit breakers. A faulted run reports the
// injected-fault and degraded-mode counters after the drive.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"time"

	"cellqos/internal/audit"
	"cellqos/internal/core"
	"cellqos/internal/faults"
	"cellqos/internal/predict"
	"cellqos/internal/signaling"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive the
// CLI in-process: args are the command-line arguments (without the
// program name) and the exit status is returned instead of calling
// os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bsnet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cells    = fs.Int("cells", 10, "number of cells in the ring")
		mode     = fs.String("mode", "mesh", "signaling topology: mesh|star")
		requests = fs.Int("requests", 200, "admission requests to drive")
		load     = fs.Float64("load", 200, "offered load used to pre-populate cells")
		seed     = fs.Uint64("seed", 1, "RNG seed")
		doAudit  = fs.Bool("audit", false, "verify every BS's bandwidth ledger after the drive")

		faultDrop      = fs.Float64("fault-drop", 0, "per-frame drop probability on every BS link")
		faultCorrupt   = fs.Float64("fault-corrupt", 0, "per-frame bit-flip probability on every BS link")
		faultDelay     = fs.Duration("fault-delay", 0, "fixed per-frame write delay on every BS link")
		faultSeed      = fs.Uint64("fault-seed", 1, "fault-injection RNG seed (per-link streams derive from it)")
		faultPartition = fs.Int("fault-partition", -1, "black-hole this cell's outbound frames for the whole drive (-1 = none)")
		faultFallback  = fs.String("fault-fallback", "decay", "degradation policy for unreachable neighbors: decay|guard|zero")
		callTimeout    = fs.Duration("call-timeout", 50*time.Millisecond, "per-attempt peer-query deadline when faults are active")
		callRetries    = fs.Int("call-retries", 3, "peer-query attempts (incl. the first) when faults are active")
		brkThreshold   = fs.Int("breaker-threshold", 0, "consecutive failures that open a link's circuit breaker (0 = off)")
		brkCooldown    = fs.Duration("breaker-cooldown", 250*time.Millisecond, "breaker open→half-open cooldown")
	)
	sf := addServeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var fallback core.Fallback
	switch *faultFallback {
	case "decay":
		fallback = core.Fallback{Mode: core.FallbackDecay}
	case "guard":
		fallback = core.Fallback{Mode: core.FallbackGuard}
	case "zero":
		fallback = core.Fallback{Mode: core.FallbackZero}
	default:
		fmt.Fprintf(stderr, "bsnet: unknown -fault-fallback %q\n", *faultFallback)
		return 2
	}
	if *sf.serve {
		return runServe(sf, *cells, *seed, *doAudit, fallback, stdout, stderr)
	}
	faulty := *faultDrop > 0 || *faultCorrupt > 0 || *faultDelay > 0 || *faultPartition >= 0
	var inj *injector
	if faulty {
		if *faultPartition >= *cells {
			fmt.Fprintf(stderr, "bsnet: -fault-partition %d outside the %d-cell ring\n", *faultPartition, *cells)
			return 2
		}
		inj = &injector{
			cfg:     faults.Config{Seed: *faultSeed, Drop: *faultDrop, Corrupt: *faultCorrupt, Delay: *faultDelay},
			byOwner: map[int][]*faults.Link{},
		}
	}

	top := topology.Ring(*cells)
	nodes := make([]*signaling.BSNode, *cells)
	for i := range nodes {
		nodes[i] = signaling.NewBSNode(topology.CellID(i), top, core.Config{
			Capacity:   100,
			Admission:  core.MustPolicy("AC3"),
			PHDTarget:  0.01,
			TStart:     1,
			Estimation: predict.StationaryConfig(),
			Fallback:   fallback,
		})
		if faulty {
			nodes[i].SetCallPolicy(signaling.CallPolicy{
				Timeout:     *callTimeout,
				MaxAttempts: *callRetries,
				Backoff:     5 * time.Millisecond,
				JitterSeed:  *faultSeed,
			})
		}
		if *brkThreshold > 0 {
			nodes[i].SetBreakerConfig(*brkThreshold, *brkCooldown)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	// links tracks each node's peer links as we create them: BSNode
	// doesn't expose its link map, and the frame counts come from here.
	links := map[*signaling.BSNode][]*signaling.Peer{}

	var mscLinks []*signaling.Peer
	switch *mode {
	case "mesh":
		if err := wireMeshTCP(top, nodes, links, inj); err != nil {
			fmt.Fprintf(stderr, "bsnet: %v\n", err)
			return 1
		}
	case "star":
		msc := signaling.NewMSC()
		ml, err := wireStarTCP(nodes, msc, links, inj)
		if err != nil {
			fmt.Fprintf(stderr, "bsnet: %v\n", err)
			return 1
		}
		mscLinks = ml
	default:
		fmt.Fprintf(stderr, "bsnet: unknown mode %q\n", *mode)
		return 2
	}
	fmt.Fprintf(stdout, "wired %d base stations over TCP (%s)\n", *cells, *mode)
	if faulty {
		fmt.Fprintf(stdout, "fault injection: drop=%.2f corrupt=%.2f delay=%s partition=%d fallback=%s seed=%d\n",
			*faultDrop, *faultCorrupt, *faultDelay, *faultPartition, *faultFallback, *faultSeed)
		for _, l := range inj.byOwner[*faultPartition] {
			l.Partition()
		}
	}

	// Pre-populate each cell with connections and mobility history so
	// reservations are non-trivial, then drive admission requests.
	rng := rand.New(rand.NewPCG(*seed, 0))
	mix := traffic.Mix{VoiceRatio: 0.8}
	var id core.ConnID
	for ci, n := range nodes {
		deg := top.Degree(topology.CellID(ci))
		for k := 0; k < 40; k++ {
			n.Engine().RecordDeparture(predict.Quadruplet{
				Event:   float64(k),
				Prev:    topology.LocalIndex(rng.IntN(deg + 1)),
				Next:    topology.LocalIndex(1 + rng.IntN(deg)),
				Sojourn: 20 + rng.Float64()*300,
			})
		}
		occupancy := int(*load * 0.4)
		for n.Engine().UsedBandwidth() < occupancy && n.Engine().UsedBandwidth() < 95 {
			id++
			bw := mix.Sample(rng).Bandwidth
			if n.Engine().UsedBandwidth()+bw > 100 {
				break
			}
			n.Engine().AddConnection(id, core.ConnSpec{Min: bw, Prev: topology.LocalIndex(rng.IntN(deg + 1))}, 60+rng.Float64()*30)
		}
	}

	admitted, blocked := 0, 0
	var calcs int
	for i := 0; i < *requests; i++ {
		n := nodes[rng.IntN(len(nodes))]
		bw := mix.Sample(rng).Bandwidth
		d := n.Engine().AdmitNew(100+float64(i)*0.1, bw, n.Peers())
		calcs += d.BrCalcs
		if d.Admitted {
			admitted++
			id++
			n.Engine().AddConnection(id, core.ConnSpec{Min: bw, Prev: topology.Self}, 100+float64(i)*0.1)
		} else {
			blocked++
		}
	}

	fmt.Fprintf(stdout, "admission requests: %d admitted, %d blocked (Ncalc avg %.2f)\n",
		admitted, blocked, float64(calcs)/float64(*requests))

	tb := stats.NewTable("Cell", "Bu", "Br", "frames-sent")
	var totalFrames uint64
	for ci, n := range nodes {
		frames := uint64(0)
		for _, p := range links[n] {
			frames += p.Stats().Sent.Load()
		}
		totalFrames += frames
		tb.AddRowStrings(fmt.Sprintf("%d", ci+1),
			fmt.Sprintf("%d", n.Engine().UsedBandwidth()),
			fmt.Sprintf("%.2f", n.Engine().LastTargetReservation()),
			fmt.Sprintf("%d", frames))
	}
	for _, p := range mscLinks {
		totalFrames += p.Stats().Sent.Load()
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, tb.String())
	fmt.Fprintf(stdout, "total protocol frames sent: %d\n", totalFrames)

	if faulty {
		var c faults.Counters
		for _, ls := range inj.byOwner {
			for _, l := range ls {
				lc := l.Counters()
				c.Dropped += lc.Dropped
				c.Corrupted += lc.Corrupted
				c.Delayed += lc.Delayed
				c.Blackholed += lc.Blackholed
			}
		}
		fmt.Fprintf(stdout, "faults injected: %d dropped, %d corrupted, %d delayed, %d blackholed\n",
			c.Dropped, c.Corrupted, c.Delayed, c.Blackholed)
		var remoteErrs, retries, timeouts, opens, degBr, degAdm uint64
		for _, n := range nodes {
			remoteErrs += n.RemoteErrors()
			degBr += n.Engine().DegradedBrCalcs()
			degAdm += n.Engine().DegradedAdmissions()
			for _, p := range links[n] {
				retries += p.Stats().Retries.Load()
				timeouts += p.Stats().Timeouts.Load()
				if b := p.Breaker(); b != nil {
					opens += b.Opens()
				}
			}
		}
		fmt.Fprintf(stdout, "degraded mode: %d failed queries (%d timeouts, %d retries, %d breaker opens), %d degraded B_r calcs, %d degraded admissions\n",
			remoteErrs, timeouts, retries, opens, degBr, degAdm)
	}

	if *doAudit {
		if err := auditNodes(nodes); err != nil {
			fmt.Fprintf(stderr, "bsnet: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "audit: %d base-station ledgers verified clean\n", len(nodes))
	}
	return 0
}

// auditNodes runs the invariant checker over every node's ledger,
// converting a Violation panic into an error for CLI reporting.
func auditNodes(nodes []*signaling.BSNode) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(*audit.Violation); ok {
				err = v
				return
			}
			panic(r)
		}
	}()
	var ck audit.Checker
	for ci, n := range nodes {
		ck.Engine(fmt.Sprintf("bs %d", ci), 0, n.Engine().Ledger())
	}
	return nil
}

// injector routes BS-side connections through internal/faults links,
// giving each its own deterministic PCG stream derived from the base
// seed, and remembers them per owning cell so a -fault-partition cell's
// outbound links can be black-holed after wiring. A nil injector wraps
// nothing. Wrapping happens only on the wiring goroutine.
type injector struct {
	cfg     faults.Config
	n       uint64
	byOwner map[int][]*faults.Link
}

// wrap wraps owner's side of a connection (nil injector: pass-through).
func (in *injector) wrap(owner int, conn io.ReadWriteCloser) io.ReadWriteCloser {
	if in == nil {
		return conn
	}
	c := in.cfg
	in.n++
	c.Seed = in.cfg.Seed + in.n
	l := faults.Wrap(conn, c)
	in.byOwner[owner] = append(in.byOwner[owner], l)
	return l
}

// wireMeshTCP connects every neighboring pair over loopback TCP,
// recording each created link in links.
func wireMeshTCP(top *topology.Topology, nodes []*signaling.BSNode, links map[*signaling.BSNode][]*signaling.Peer, inj *injector) error {
	for a := 0; a < len(nodes); a++ {
		for _, nb := range top.Neighbors(topology.CellID(a)) {
			if int(nb) <= a {
				continue
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			// The accept goroutine only performs the handshake; both
			// Attach calls and links writes stay on this goroutine so
			// the map is never touched concurrently.
			type handshake struct {
				remote signaling.NodeID
				conn   net.Conn
				err    error
			}
			acc := make(chan handshake, 1)
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					acc <- handshake{err: err}
					return
				}
				remote, err := signaling.AcceptHello(conn)
				acc <- handshake{remote: remote, conn: conn, err: err}
			}()
			conn, err := signaling.DialTCP(ln.Addr().String(), signaling.NodeID(nb))
			if err != nil {
				return err
			}
			links[nodes[nb]] = append(links[nodes[nb]], nodes[nb].Attach(signaling.NodeID(a), inj.wrap(int(nb), conn)))
			h := <-acc
			if h.err != nil {
				return h.err
			}
			links[nodes[a]] = append(links[nodes[a]], nodes[a].Attach(h.remote, inj.wrap(a, h.conn)))
			ln.Close()
		}
	}
	return nil
}

// wireStarTCP connects every BS to an in-process MSC over loopback TCP,
// recording each BS-side link in links. Faults are injected on the BS
// side of each uplink only — the MSC side is attached from the accept
// goroutine, and one faulty end per pipe already exercises both
// directions of every relayed query.
func wireStarTCP(nodes []*signaling.BSNode, msc *signaling.MSC, links map[*signaling.BSNode][]*signaling.Peer, inj *injector) ([]*signaling.Peer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	var mscLinks []*signaling.Peer
	done := make(chan error, 1)
	go func() {
		for range nodes {
			conn, err := ln.Accept()
			if err != nil {
				done <- err
				return
			}
			remote, err := signaling.AcceptHello(conn)
			if err != nil {
				done <- err
				return
			}
			mscLinks = append(mscLinks, msc.Attach(remote, conn))
		}
		done <- nil
	}()
	for _, n := range nodes {
		conn, err := signaling.DialTCP(ln.Addr().String(), signaling.NodeID(n.ID()))
		if err != nil {
			return nil, err
		}
		links[n] = append(links[n], n.Attach(signaling.MSCNode, inj.wrap(int(n.ID()), conn)))
	}
	if err := <-done; err != nil {
		return nil, err
	}
	return mscLinks, nil
}
