// Command bsnet demonstrates the distributed signaling deployment: one
// process hosts a set of base-station nodes that talk to each other over
// real loopback TCP connections (full mesh, Fig. 1(b)) or through a
// Mobile Switching Center relay (star, Fig. 1(a)), and drives admission
// tests through the wire protocol.
//
// Usage:
//
//	bsnet [-cells 10] [-mode mesh|star] [-requests 200] [-load 200]
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"os"

	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/signaling"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
)

func main() {
	var (
		cells    = flag.Int("cells", 10, "number of cells in the ring")
		mode     = flag.String("mode", "mesh", "signaling topology: mesh|star")
		requests = flag.Int("requests", 200, "admission requests to drive")
		load     = flag.Float64("load", 200, "offered load used to pre-populate cells")
		seed     = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	top := topology.Ring(*cells)
	nodes := make([]*signaling.BSNode, *cells)
	for i := range nodes {
		nodes[i] = signaling.NewBSNode(topology.CellID(i), top, core.Config{
			Capacity:   100,
			Policy:     core.AC3,
			PHDTarget:  0.01,
			TStart:     1,
			Estimation: predict.StationaryConfig(),
		})
	}

	var mscLinks []*signaling.Peer
	switch *mode {
	case "mesh":
		if err := wireMeshTCP(top, nodes); err != nil {
			fmt.Fprintf(os.Stderr, "bsnet: %v\n", err)
			os.Exit(1)
		}
	case "star":
		msc := signaling.NewMSC()
		links, err := wireStarTCP(nodes, msc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsnet: %v\n", err)
			os.Exit(1)
		}
		mscLinks = links
	default:
		fmt.Fprintf(os.Stderr, "bsnet: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	fmt.Printf("wired %d base stations over TCP (%s)\n", *cells, *mode)

	// Pre-populate each cell with connections and mobility history so
	// reservations are non-trivial, then drive admission requests.
	rng := rand.New(rand.NewPCG(*seed, 0))
	mix := traffic.Mix{VoiceRatio: 0.8}
	var id core.ConnID
	for ci, n := range nodes {
		deg := top.Degree(topology.CellID(ci))
		for k := 0; k < 40; k++ {
			n.Engine().RecordDeparture(predict.Quadruplet{
				Event:   float64(k),
				Prev:    topology.LocalIndex(rng.IntN(deg + 1)),
				Next:    topology.LocalIndex(1 + rng.IntN(deg)),
				Sojourn: 20 + rng.Float64()*300,
			})
		}
		occupancy := int(*load * 0.4)
		for n.Engine().UsedBandwidth() < occupancy && n.Engine().UsedBandwidth() < 95 {
			id++
			bw := mix.Sample(rng).Bandwidth
			if n.Engine().UsedBandwidth()+bw > 100 {
				break
			}
			n.Engine().AddConnection(id, bw, topology.LocalIndex(rng.IntN(deg+1)), 60+rng.Float64()*30)
		}
	}

	admitted, blocked := 0, 0
	var calcs int
	for i := 0; i < *requests; i++ {
		n := nodes[rng.IntN(len(nodes))]
		bw := mix.Sample(rng).Bandwidth
		d := n.Engine().AdmitNew(100+float64(i)*0.1, bw, n.Peers())
		calcs += d.BrCalcs
		if d.Admitted {
			admitted++
			id++
			n.Engine().AddConnection(id, bw, topology.Self, 100+float64(i)*0.1)
		} else {
			blocked++
		}
	}

	fmt.Printf("admission requests: %d admitted, %d blocked (Ncalc avg %.2f)\n",
		admitted, blocked, float64(calcs)/float64(*requests))

	tb := stats.NewTable("Cell", "Bu", "Br", "frames-sent")
	var totalFrames uint64
	for ci, n := range nodes {
		frames := uint64(0)
		for _, p := range nodeLinks(n) {
			frames += p.Stats().Sent.Load()
		}
		totalFrames += frames
		tb.AddRowStrings(fmt.Sprintf("%d", ci+1),
			fmt.Sprintf("%d", n.Engine().UsedBandwidth()),
			fmt.Sprintf("%.2f", n.Engine().LastTargetReservation()),
			fmt.Sprintf("%d", frames))
	}
	for _, p := range mscLinks {
		totalFrames += p.Stats().Sent.Load()
	}
	fmt.Println()
	fmt.Print(tb.String())
	fmt.Printf("total protocol frames sent: %d\n", totalFrames)

	for _, n := range nodes {
		n.Close()
	}
}

// nodeLinks drains a node's peer links via the exported surface: BSNode
// doesn't expose its link map, so we track links as we create them.
var linksByNode = map[*signaling.BSNode][]*signaling.Peer{}

func nodeLinks(n *signaling.BSNode) []*signaling.Peer { return linksByNode[n] }

// wireMeshTCP connects every neighboring pair over loopback TCP.
func wireMeshTCP(top *topology.Topology, nodes []*signaling.BSNode) error {
	for a := 0; a < len(nodes); a++ {
		for _, nb := range top.Neighbors(topology.CellID(a)) {
			if int(nb) <= a {
				continue
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			acceptErr := make(chan error, 1)
			go func(a int) {
				conn, err := ln.Accept()
				if err != nil {
					acceptErr <- err
					return
				}
				remote, err := signaling.AcceptHello(conn)
				if err != nil {
					acceptErr <- err
					return
				}
				linksByNode[nodes[a]] = append(linksByNode[nodes[a]], nodes[a].Attach(remote, conn))
				acceptErr <- nil
			}(a)
			conn, err := signaling.DialTCP(ln.Addr().String(), signaling.NodeID(nb))
			if err != nil {
				return err
			}
			linksByNode[nodes[nb]] = append(linksByNode[nodes[nb]], nodes[nb].Attach(signaling.NodeID(a), conn))
			if err := <-acceptErr; err != nil {
				return err
			}
			ln.Close()
		}
	}
	return nil
}

// wireStarTCP connects every BS to an in-process MSC over loopback TCP.
func wireStarTCP(nodes []*signaling.BSNode, msc *signaling.MSC) ([]*signaling.Peer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	var mscLinks []*signaling.Peer
	done := make(chan error, 1)
	go func() {
		for range nodes {
			conn, err := ln.Accept()
			if err != nil {
				done <- err
				return
			}
			remote, err := signaling.AcceptHello(conn)
			if err != nil {
				done <- err
				return
			}
			mscLinks = append(mscLinks, msc.Attach(remote, conn))
		}
		done <- nil
	}()
	for _, n := range nodes {
		conn, err := signaling.DialTCP(ln.Addr().String(), signaling.NodeID(n.ID()))
		if err != nil {
			return nil, err
		}
		linksByNode[n] = append(linksByNode[n], n.Attach(signaling.MSCNode, conn))
	}
	if err := <-done; err != nil {
		return nil, err
	}
	return mscLinks, nil
}
