package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cellqos/internal/clock"
)

// TestMain re-execs the test binary as a real bsnet process when the
// helper variable is set: the SIGKILL crash-recovery test needs a
// victim it can kill -9 without taking the test down with it.
func TestMain(m *testing.M) {
	if args := os.Getenv("BSNET_HELPER_ARGS"); args != "" {
		os.Exit(run(strings.Fields(args), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func readServeReport(t *testing.T, path string) serveReport {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestServeSmokeBounded(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	var out bytes.Buffer
	code := run([]string{
		"-serve", "-cells", "4", "-serve-events", "200", "-pace", "0",
		"-state-dir", filepath.Join(dir, "state"), "-serve-report", report, "-audit",
	}, &out, &out)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	rep := readServeReport(t, report)
	if rep.Events != 200 || len(rep.Cells) != 4 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Offered != rep.Admitted+rep.Blocked+rep.Shed {
		t.Fatalf("conservation: %+v", rep.Report)
	}
	if !strings.Contains(out.String(), "cold start") {
		t.Fatalf("missing cold-start line:\n%s", out.String())
	}
}

// TestServeCrashRecoverySIGKILL is the acceptance-criteria test with a
// real crash: a bsnet server is SIGKILLed mid-drive after its first
// durable checkpoint, a fresh process restores from the same state
// directory and replays the full workload, and its final per-cell B_r
// must match a never-crashed control to floating-point noise. The
// estimator's stationary selection is translation-invariant and the
// small -nquad cache turns over completely during the replay, so the
// arbitrary kill point must not leave a trace in the reservations.
func TestServeCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	const events = "2000"
	common := []string{"-serve", "-cells", "4", "-nquad", "8", "-seed", "7", "-step", "1", "-audit"}

	// Control: one uninterrupted run.
	ctrlReport := filepath.Join(t.TempDir(), "control.json")
	var out bytes.Buffer
	code := run(append(append([]string{}, common...),
		"-serve-events", events, "-pace", "0", "-serve-report", ctrlReport), &out, &out)
	if code != 0 {
		t.Fatalf("control exit %d\n%s", code, out.String())
	}
	ctrl := readServeReport(t, ctrlReport)
	if ctrl.Blocked != 0 {
		// The B_r comparison assumes both runs admit every call (the
		// ring is far under capacity); a blocked call would let the
		// connection tables diverge for reasons other than the crash.
		t.Fatalf("control blocked %d calls; load assumption broke", ctrl.Blocked)
	}

	// Victim: unbounded, checkpointing fast, killed without warning.
	stateDir := filepath.Join(t.TempDir(), "state")
	victim := exec.Command(os.Args[0])
	victim.Env = append(os.Environ(), "BSNET_HELPER_ARGS="+strings.Join(append(append([]string{}, common...),
		"-pace", "200us", "-checkpoint-every", "25ms", "-state-dir", stateDir), " "))
	var victimOut bytes.Buffer
	victim.Stdout, victim.Stderr = &victimOut, &victimOut
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	defer victim.Process.Kill()

	// Wait for the first durable checkpoint, let a few more cycles
	// land, then SIGKILL — no drain, no final flush.
	w := clock.Wall{}
	start := w.Now()
	current := filepath.Join(stateDir, "checkpoint.cqsc")
	for {
		if _, err := os.Stat(current); err == nil {
			break
		}
		if w.Since(start) > 10*time.Second {
			t.Fatalf("victim wrote no checkpoint in 10s\n%s", victimOut.String())
		}
		w.Sleep(5 * time.Millisecond)
	}
	w.Sleep(80 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.Wait() // SIGKILL: a non-zero wait status is the point

	// Restart from the crashed state directory and replay the full
	// workload in-process.
	restReport := filepath.Join(stateDir, "report.json")
	out.Reset()
	code = run(append(append([]string{}, common...),
		"-serve-events", events, "-pace", "0", "-state-dir", stateDir, "-serve-report", restReport), &out, &out)
	// Clean, or degraded only because the kill landed between the
	// current-file rotation renames and the restore fell back to .prev.
	if code != 0 && code != 3 {
		t.Fatalf("restored run exit %d\n%s", code, out.String())
	}
	rest := readServeReport(t, restReport)
	if rest.RestoredFrom == "" || rest.RestoredSeq == 0 {
		t.Fatalf("restart did not restore a checkpoint: %+v\n%s", rest.Report, out.String())
	}
	if code == 3 && rest.RestoredFrom != "prev" {
		t.Fatalf("degraded exit without a prev-file restore: %+v", rest.Report)
	}
	if rest.Blocked != 0 {
		t.Fatalf("restored run blocked %d calls; load assumption broke", rest.Blocked)
	}
	if rest.ResumeSimNow <= 0 {
		t.Fatalf("resume sim time %v, want > 0 after a mid-run crash", rest.ResumeSimNow)
	}

	// Reconvergence: per-cell B_r within floating-point noise of the
	// never-crashed control.
	if len(rest.Cells) != len(ctrl.Cells) {
		t.Fatalf("cell counts: %d vs %d", len(rest.Cells), len(ctrl.Cells))
	}
	for i := range ctrl.Cells {
		if diff := math.Abs(rest.Cells[i].Br - ctrl.Cells[i].Br); diff > 1e-9 {
			t.Fatalf("cell %d: restored B_r %v vs control %v (diff %v)",
				i, rest.Cells[i].Br, ctrl.Cells[i].Br, diff)
		}
	}
}
