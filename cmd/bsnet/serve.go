package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"cellqos/internal/core"
	"cellqos/internal/predict"
	"cellqos/internal/service"
	"cellqos/internal/topology"
)

// serveFlags configures the long-running admission-server mode
// (-serve): a ring of in-process base stations driven continuously,
// with crash-safe estimator checkpointing, an overload gate, and a
// graceful SIGINT/SIGTERM drain (DESIGN.md §15).
type serveFlags struct {
	serve           *bool
	stateDir        *string
	checkpointEvery *time.Duration
	events          *uint64
	pace            *time.Duration
	step            *float64
	gateCapacity    *float64
	gateRefill      *float64
	drainTimeout    *time.Duration
	nquad           *int
	workers         *int
	reportPath      *string
}

func addServeFlags(fs *flag.FlagSet) *serveFlags {
	return &serveFlags{
		serve:           fs.Bool("serve", false, "run as a long-lived admission server instead of a bounded drive"),
		stateDir:        fs.String("state-dir", "", "checkpoint directory for -serve (empty = stateless)"),
		checkpointEvery: fs.Duration("checkpoint-every", 5*time.Second, "wall cadence between periodic checkpoints (0 = final flush only)"),
		events:          fs.Uint64("serve-events", 0, "events to serve before a clean shutdown (0 = run until signalled)"),
		pace:            fs.Duration("pace", time.Millisecond, "wall-clock pause between events (0 = flat out)"),
		step:            fs.Float64("step", 1, "simulation seconds per event"),
		gateCapacity:    fs.Float64("gate-capacity", 0, "overload gate burst capacity in new calls (0 = gate off)"),
		gateRefill:      fs.Float64("gate-refill", 0, "overload gate refill rate in new calls per second"),
		drainTimeout:    fs.Duration("drain-timeout", 5*time.Second, "shutdown budget for in-flight admissions"),
		nquad:           fs.Int("nquad", 100, "estimator quadruplet cache size per (prev, next) pair"),
		workers:         fs.Int("workers", 0, "admission worker goroutines (0 = inline on the drive loop)"),
		reportPath:      fs.String("serve-report", "", "write the final report as JSON to this file"),
	}
}

// serveReport is the JSON document written to -serve-report: the
// service's own accounting plus each cell's final reservation state,
// which the crash-recovery test compares against a never-crashed
// control run.
type serveReport struct {
	service.Report
	Cells []serveCellReport
}

type serveCellReport struct {
	Br   float64
	Used int
}

// runServe is the -serve entry point; its return value is the process
// exit code (service.ExitClean/ExitFailed/ExitDegraded).
func runServe(sf *serveFlags, cells int, seed uint64, doAudit bool, fallback core.Fallback, stdout, stderr io.Writer) int {
	top := topology.Ring(cells)
	mesh := service.NewMeshCells(top, func(id topology.CellID, degree int) *core.Engine {
		return core.NewEngine(core.Config{
			Capacity: 100, Degree: degree, Admission: core.MustPolicy("AC3"),
			PHDTarget: 0.01, TStart: 1,
			Estimation: predict.Config{Tint: math.Inf(1), NQuad: *sf.nquad},
			Fallback:   fallback,
			Lock:       &sync.Mutex{},
		})
	})

	var ck *service.Checkpointer
	if *sf.stateDir != "" {
		var err error
		if ck, err = service.NewCheckpointer(*sf.stateDir); err != nil {
			fmt.Fprintf(stderr, "bsnet: %v\n", err)
			return service.ExitFailed
		}
	}
	srv := service.New(service.Config{
		Cells:           mesh,
		Checkpointer:    ck,
		CheckpointEvery: *sf.checkpointEvery,
		Pace:            *sf.pace,
		Gate:            service.NewGate(*sf.gateCapacity, *sf.gateRefill, nil),
		DrainTimeout:    *sf.drainTimeout,
		Workers:         *sf.workers,
		Seed:            seed,
		Audit:           doAudit,
	})

	info, err := srv.Restore()
	if err != nil {
		fmt.Fprintf(stderr, "bsnet: restore: %v\n", err)
		return service.ExitFailed
	}
	if info.Found {
		fmt.Fprintf(stdout, "restored checkpoint seq %d from %s (sim time %.3f)\n", info.Seq, info.Source, info.SimNow)
	} else {
		fmt.Fprintf(stdout, "cold start: no checkpoint to restore\n")
	}
	srv.SetTime(service.NewStepSource(info.SimNow, *sf.step))

	// First SIGINT/SIGTERM starts the graceful shutdown; the done
	// channel retires the watcher on the no-signal path so bounded
	// in-process runs (tests) don't leak it.
	stop := make(chan struct{})
	done := make(chan struct{})
	defer close(done)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		select {
		case <-sig:
			close(stop)
		case <-done:
		}
	}()

	fmt.Fprintf(stdout, "serving %d base stations (seed %d, nquad %d, %d workers)\n", cells, seed, *sf.nquad, *sf.workers)
	rep := srv.Serve(*sf.events, stop)

	fmt.Fprintf(stdout, "served %d events: %d new calls offered (%d admitted, %d blocked, %d shed), %d hand-offs, %d completions\n",
		rep.Events, rep.Offered, rep.Admitted, rep.Blocked, rep.Shed, rep.HandOffs, rep.Completions)
	fmt.Fprintf(stdout, "checkpoints: %d written, last seq %d; drained=%v final-flush=%v\n",
		rep.Checkpoints, rep.Seq, rep.DrainOK, rep.FinalFlushOK)
	if rep.Err != "" {
		fmt.Fprintf(stderr, "bsnet: %s\n", rep.Err)
	}

	out := serveReport{Report: *rep, Cells: make([]serveCellReport, len(mesh))}
	for i, c := range mesh {
		out.Cells[i] = serveCellReport{
			Br:   c.Engine.ComputeTargetReservation(rep.FinalSimNow, c.Peers),
			Used: c.Engine.UsedBandwidth(),
		}
	}
	if *sf.reportPath != "" {
		data, err := json.MarshalIndent(&out, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "bsnet: report: %v\n", err)
			return service.ExitFailed
		}
		if err := os.WriteFile(*sf.reportPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "bsnet: report: %v\n", err)
			return service.ExitFailed
		}
	}
	fmt.Fprintf(stdout, "exit %d\n", rep.ExitCode)
	return rep.ExitCode
}
