package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmokeMesh drives a small full-mesh deployment over real loopback
// TCP with the post-run ledger audit enabled.
func TestSmokeMesh(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-cells", "4", "-requests", "30", "-audit"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, frag := range []string{
		"wired 4 base stations over TCP (mesh)",
		"admission requests:",
		"total protocol frames sent:",
		"audit: 4 base-station ledgers verified clean",
	} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

// TestSmokeStar covers the MSC-relay topology.
func TestSmokeStar(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-cells", "4", "-requests", "30", "-mode", "star", "-audit"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wired 4 base stations over TCP (star)") {
		t.Errorf("star header missing:\n%s", out.String())
	}
}

// TestSmokeBadFlags: usage errors must exit 2 with a diagnostic.
func TestSmokeBadFlags(t *testing.T) {
	for _, args := range [][]string{{"-mode", "bus"}, {"-no-such-flag"}} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}
