package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmokeMesh drives a small full-mesh deployment over real loopback
// TCP with the post-run ledger audit enabled.
func TestSmokeMesh(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-cells", "4", "-requests", "30", "-audit"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, frag := range []string{
		"wired 4 base stations over TCP (mesh)",
		"admission requests:",
		"total protocol frames sent:",
		"audit: 4 base-station ledgers verified clean",
	} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

// TestSmokeStar covers the MSC-relay topology.
func TestSmokeStar(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-cells", "4", "-requests", "30", "-mode", "star", "-audit"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "wired 4 base stations over TCP (star)") {
		t.Errorf("star header missing:\n%s", out.String())
	}
}

// TestSmokeBadFlags: usage errors must exit 2 with a diagnostic.
func TestSmokeBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "bus"},
		{"-no-such-flag"},
		{"-fault-fallback", "wishful"},
		{"-fault-partition", "9", "-cells", "4"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

// TestSmokeFaultyMesh drops 15% of frames on every TCP link; the retry
// layer must keep the drive alive and the ledgers must still audit
// clean, with the fault and resilience counters reported.
func TestSmokeFaultyMesh(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-cells", "4", "-requests", "15",
		"-fault-drop", "0.15", "-call-timeout", "20ms", "-audit"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, frag := range []string{
		"fault injection: drop=0.15",
		"faults injected:",
		"degraded mode:",
		"audit: 4 base-station ledgers verified clean",
	} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
	if strings.Contains(out.String(), "faults injected: 0 dropped") {
		t.Errorf("drop faults were configured but none injected:\n%s", out.String())
	}
}

// TestSmokeFaultPartition black-holes cell 0's outbound frames for the
// whole drive: every query by or of cell 0 must fail, degrade per the
// guard fallback, trip breakers — and the ledgers must still audit clean.
func TestSmokeFaultPartition(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-cells", "4", "-requests", "15",
		"-fault-partition", "0", "-fault-fallback", "guard",
		"-call-timeout", "10ms", "-call-retries", "1",
		"-breaker-threshold", "3", "-audit"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "audit: 4 base-station ledgers verified clean") {
		t.Errorf("audit line missing:\n%s", s)
	}
	if strings.Contains(s, "degraded mode: 0 failed queries") {
		t.Errorf("partitioned cell produced no failed queries:\n%s", s)
	}
	if strings.Contains(s, "0 degraded B_r calcs") {
		t.Errorf("partition did not force degraded B_r computations:\n%s", s)
	}
}
