// Command benchjson converts `go test -bench` output into the
// BENCH_admission.json artifact tracked at the repository root: a small
// machine-readable record of the admission fast path's throughput.
//
// The file keeps two measurement sets. "baseline" is written the first
// time the file is created and preserved by every later run, so it pins
// the pre-optimization numbers the fast path is judged against;
// "current" is refreshed on each invocation, and "speedup" is their
// per-benchmark ns/op ratio. Delete the file (or pass -rebaseline) to
// re-baseline deliberately.
//
// Usage:
//
//	go test -bench ... -benchmem ./internal/core/ | benchjson -out BENCH_admission.json
//
// Sub-benchmarks named .../shards=N additionally produce a "scaling"
// map: the ns/op ratio of the shards=1 run to each shards=N run of the
// same benchmark (BENCH_sim.json pins the sharded kernel's speedup this
// way).
//
// With -check the tool also gates: a current allocation profile
// (B/op, allocs/op) more than -max-regression worse than the pinned
// baseline fails, as does — with -check-time, for runs on the machine
// that recorded the baseline — a ns/op regression. -min-scaling fails
// when the best shards=N scaling falls short of the requested factor,
// capped by the cores the host actually has (a single-core machine
// cannot exhibit parallel speedup, so the gate adjusts rather than
// demanding the impossible).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line. P99NsPerOp carries the custom
// "p99-ns/op" metric the admission benchmark reports (zero when the
// benchmark doesn't emit it); like ns/op it is machine-dependent, so it
// is only gated under -check-time.
type result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	P99NsPerOp  float64 `json:"p99_ns_per_op,omitempty"`
}

// report is the serialized artifact.
type report struct {
	Baseline map[string]result  `json:"baseline"`
	Current  map[string]result  `json:"current"`
	Speedup  map[string]float64 `json:"speedup"`
	Scaling  map[string]float64 `json:"scaling,omitempty"`
	Raw      []string           `json:"raw"`
}

// shardSuffix matches the .../shards=N sub-benchmark naming convention.
var shardSuffix = regexp.MustCompile(`^(Benchmark\S*)/shards=(\d+)$`)

// scaling derives the per-shard-count speedup map from the current
// results: for every benchmark with a shards=1 entry, the ratio of its
// ns/op to each shards=N sibling's.
func scaling(current map[string]result) map[string]float64 {
	out := map[string]float64{}
	for name, res := range current {
		m := shardSuffix.FindStringSubmatch(name)
		if m == nil || m[2] == "1" || res.NsPerOp <= 0 {
			continue
		}
		base, ok := current[m[1]+"/shards=1"]
		if !ok || base.NsPerOp <= 0 {
			continue
		}
		out[name] = base.NsPerOp / res.NsPerOp
	}
	return out
}

// check gates the current results against the pinned baseline. The
// allocation profile (B/op, allocs/op) is machine-independent and is
// always checked; ns/op only when checkTime is set, since wall time
// against a baseline from different hardware is noise, not signal.
func check(rep report, maxRegression float64, checkTime bool) error {
	names := make([]string, 0, len(rep.Current))
	for name := range rep.Current {
		names = append(names, name)
	}
	sort.Strings(names)
	var bad []string
	worse := func(cur, base float64) bool {
		return base > 0 && cur > base*(1+maxRegression)
	}
	for _, name := range names {
		base, ok := rep.Baseline[name]
		if !ok {
			continue
		}
		cur := rep.Current[name]
		if worse(cur.BytesPerOp, base.BytesPerOp) {
			bad = append(bad, fmt.Sprintf("%s: %.0f B/op vs baseline %.0f", name, cur.BytesPerOp, base.BytesPerOp))
		}
		if worse(cur.AllocsPerOp, base.AllocsPerOp) {
			bad = append(bad, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f", name, cur.AllocsPerOp, base.AllocsPerOp))
		}
		if checkTime && worse(cur.NsPerOp, base.NsPerOp) {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f", name, cur.NsPerOp, base.NsPerOp))
		}
		if checkTime && worse(cur.P99NsPerOp, base.P99NsPerOp) {
			bad = append(bad, fmt.Sprintf("%s: %.0f p99-ns/op vs baseline %.0f", name, cur.P99NsPerOp, base.P99NsPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("regression beyond %.0f%%:\n  %s", maxRegression*100, joinLines(bad))
	}
	return nil
}

// checkScaling gates the sharded-kernel speedup. want is capped at
// roughly half the host's cores: conservative synchronization overhead
// aside, N shards cannot run faster than the cores carrying them.
func checkScaling(sc map[string]float64, want float64, cores int) error {
	if want <= 0 || len(sc) == 0 {
		return nil
	}
	effective := want
	if cap := 0.45 * float64(cores); cap < effective {
		effective = cap
	}
	best, bestName := 0.0, ""
	for name, v := range sc {
		if v > best {
			best, bestName = v, name
		}
	}
	if best < effective {
		return fmt.Errorf("scaling %.2fx (%s) below required %.2fx (%d cores, requested %.2fx)",
			best, bestName, effective, cores, want)
	}
	fmt.Fprintf(os.Stderr, "benchjson: scaling ok: %.2fx (%s) >= %.2fx required on %d cores\n",
		best, bestName, effective, cores)
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// gomaxprocsSuffix is the trailing -N the test runner appends to
// benchmark names; it is stripped so results stay comparable across
// machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads go-test benchmark lines generically: the name, the
// iteration count, then any number of (value, unit) pairs. Custom
// metrics reported via b.ReportMetric (the admission benchmark's
// "p99-ns/op") appear between ns/op and B/op in the runner's output, so
// a positional regex would silently drop the allocation columns —
// exactly the numbers -check gates — the moment a benchmark grows a
// custom metric. Unknown units are ignored, not errors.
func parse(r io.Reader) (map[string]result, []string, error) {
	results := map[string]result{}
	var raw []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		raw = append(raw, line)
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		res := result{Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			switch f[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "p99-ns/op":
				res.P99NsPerOp = v
			}
		}
		results[gomaxprocsSuffix.ReplaceAllString(f[0], "")] = res
	}
	return results, raw, sc.Err()
}

func run() error {
	in := flag.String("in", "-", "bench output to parse (- for stdin)")
	out := flag.String("out", "BENCH_admission.json", "JSON artifact to write")
	rebaseline := flag.Bool("rebaseline", false, "overwrite the recorded baseline with this run")
	doCheck := flag.Bool("check", false, "fail on allocation-profile regression beyond -max-regression")
	maxRegression := flag.Float64("max-regression", 0.10, "allowed fractional regression vs the pinned baseline")
	checkTime := flag.Bool("check-time", false, "with -check, also gate ns/op (same-machine baselines only)")
	minScaling := flag.Float64("min-scaling", 0, "fail when the best shards=N speedup is below this factor (core-capped; 0 = off)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	current, raw, err := parse(src)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	rep := report{Current: current, Raw: raw, Speedup: map[string]float64{}}
	if prev, err := os.ReadFile(*out); err == nil && !*rebaseline {
		var old report
		if err := json.Unmarshal(prev, &old); err != nil {
			return fmt.Errorf("existing %s is not a benchjson artifact: %w", *out, err)
		}
		rep.Baseline = old.Baseline
	}
	if rep.Baseline == nil {
		rep.Baseline = current
	}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if base, ok := rep.Baseline[name]; ok && rep.Current[name].NsPerOp > 0 {
			rep.Speedup[name] = base.NsPerOp / rep.Current[name].NsPerOp
		}
	}
	rep.Scaling = scaling(rep.Current)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if *doCheck {
		if err := check(rep, *maxRegression, *checkTime); err != nil {
			return err
		}
	}
	return checkScaling(rep.Scaling, *minScaling, runtime.NumCPU())
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
