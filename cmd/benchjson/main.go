// Command benchjson converts `go test -bench` output into the
// BENCH_admission.json artifact tracked at the repository root: a small
// machine-readable record of the admission fast path's throughput.
//
// The file keeps two measurement sets. "baseline" is written the first
// time the file is created and preserved by every later run, so it pins
// the pre-optimization numbers the fast path is judged against;
// "current" is refreshed on each invocation, and "speedup" is their
// per-benchmark ns/op ratio. Delete the file (or pass -rebaseline) to
// re-baseline deliberately.
//
// Usage:
//
//	go test -bench ... -benchmem ./internal/core/ | benchjson -out BENCH_admission.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// result is one parsed benchmark line.
type result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// report is the serialized artifact.
type report struct {
	Baseline map[string]result  `json:"baseline"`
	Current  map[string]result  `json:"current"`
	Speedup  map[string]float64 `json:"speedup"`
	Raw      []string           `json:"raw"`
}

// benchLine matches the go-test benchmark output format; the trailing
// -N GOMAXPROCS suffix is stripped from the name so results stay
// comparable across machines.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func parse(r io.Reader) (map[string]result, []string, error) {
	results := map[string]result{}
	var raw []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		raw = append(raw, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var res result
		res.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		res.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		results[m[1]] = res
	}
	return results, raw, sc.Err()
}

func run() error {
	in := flag.String("in", "-", "bench output to parse (- for stdin)")
	out := flag.String("out", "BENCH_admission.json", "JSON artifact to write")
	rebaseline := flag.Bool("rebaseline", false, "overwrite the recorded baseline with this run")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	current, raw, err := parse(src)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	rep := report{Current: current, Raw: raw, Speedup: map[string]float64{}}
	if prev, err := os.ReadFile(*out); err == nil && !*rebaseline {
		var old report
		if err := json.Unmarshal(prev, &old); err != nil {
			return fmt.Errorf("existing %s is not a benchjson artifact: %w", *out, err)
		}
		rep.Baseline = old.Baseline
	}
	if rep.Baseline == nil {
		rep.Baseline = current
	}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if base, ok := rep.Baseline[name]; ok && rep.Current[name].NsPerOp > 0 {
			rep.Speedup[name] = base.NsPerOp / rep.Current[name].NsPerOp
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*out, append(buf, '\n'), 0o644)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
