// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig8 [-duration 20000] [-seed 1] [-loads 60,100,150,200,250,300]
//	experiments -run all [-out results/] [-parallel 8] [-timeout 10m] [-progress]
//
// Each experiment prints its qualitative paper claim followed by the
// regenerated data as aligned tables; with -out, CSV files are written
// alongside. Scenario points fan out over -parallel workers (default
// GOMAXPROCS) with identical output at any worker count; -timeout
// cancels in-flight sweeps and -progress reports per-point throughput.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cellqos/internal/experiments"
	"cellqos/internal/runner"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "", "experiment ID to run, or 'all'")
		duration = flag.Float64("duration", 20000, "stationary run length (simulated seconds)")
		traceDur = flag.Float64("trace-duration", 2000, "fig10/11 run length (simulated seconds)")
		days     = flag.Int("days", 2, "fig14 run length (days)")
		seed     = flag.Uint64("seed", 1, "RNG seed")
		loads    = flag.String("loads", "", "comma-separated offered loads (default 60,100,150,200,250,300)")
		out      = flag.String("out", "", "directory to write CSV files into")
		plotFlag = flag.Bool("plot", false, "render figure experiments as terminal charts")
		parallel = flag.Int("parallel", 0, "scenario workers (0 = GOMAXPROCS); results are identical at any value")
		timeout  = flag.Duration("timeout", 0, "cancel in-flight sweeps after this wall time (0 = none)")
		progress = flag.Bool("progress", false, "report per-point progress on stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "experiments: -run <id>|all or -list required")
		flag.Usage()
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := experiments.Options{
		Duration:      *duration,
		TraceDuration: *traceDur,
		Days:          *days,
		Seed:          *seed,
		Parallel:      *parallel,
		Context:       ctx,
	}
	if *progress {
		opt.Sink = runner.SinkFunc(func(p runner.Progress) {
			if p.Point.Err != nil {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s: %v\n", p.Done, p.Total, p.Point.Key, p.Point.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s: %.1fs wall, %.0f events/s\n",
				p.Done, p.Total, p.Point.Key, p.Point.Wall.Seconds(), p.EventsPerSec())
		})
	}
	if *loads != "" {
		for _, part := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad load %q: %v\n", part, err)
				os.Exit(2)
			}
			opt.Loads = append(opt.Loads, v)
		}
	}

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, e)
		}
	}

	for _, e := range todo {
		start := time.Now()
		rep, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s ===\n", rep.ID, rep.Title)
		fmt.Printf("paper: %s\n\n", rep.PaperClaim)
		for _, lt := range rep.Tables {
			if lt.Label != "" {
				fmt.Println(lt.Label)
			}
			fmt.Println(lt.Table.String())
			if *out != "" {
				if err := writeCSV(*out, rep.ID, lt); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
			}
		}
		if *plotFlag {
			for _, ch := range rep.Charts {
				fmt.Println(ch.Render())
			}
		}
		fmt.Printf("(%s in %.1fs)\n\n", rep.ID, time.Since(start).Seconds())
	}
}

func writeCSV(dir, id string, lt experiments.LabeledTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, strings.Trim(lt.Label, "() "))
	name := id + ".csv"
	if slug != "" {
		name = id + "-" + slug + ".csv"
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(lt.Table.CSV()), 0o644)
}
