// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig8 [-duration 20000] [-seed 1] [-loads 60,100,150,200,250,300]
//	experiments -run all [-out results/] [-parallel 8] [-shards 4] [-timeout 10m] [-progress]
//	experiments -run table2 -audit 64
//
// Each experiment prints its qualitative paper claim followed by the
// regenerated data as aligned tables; with -out, CSV files are written
// alongside. Scenario points fan out over -parallel workers (default
// GOMAXPROCS) with identical output at any worker count; -timeout
// cancels in-flight sweeps and -progress reports per-point throughput.
// With -audit N every simulation verifies runtime invariants
// (internal/audit) on every Nth event and at its final snapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cellqos/internal/audit"
	"cellqos/internal/clock"
	"cellqos/internal/experiments"
	"cellqos/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive the
// CLI in-process: args are the command-line arguments (without the
// program name) and the exit status is returned instead of calling
// os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list       = fs.Bool("list", false, "list experiments and exit")
		runID      = fs.String("run", "", "experiment ID to run, or 'all'")
		duration   = fs.Float64("duration", 20000, "stationary run length (simulated seconds)")
		traceDur   = fs.Float64("trace-duration", 2000, "fig10/11 run length (simulated seconds)")
		days       = fs.Int("days", 2, "fig14 run length (days)")
		seed       = fs.Uint64("seed", 1, "RNG seed")
		loads      = fs.String("loads", "", "comma-separated offered loads (default 60,100,150,200,250,300)")
		out        = fs.String("out", "", "directory to write CSV files into")
		plotFlag   = fs.Bool("plot", false, "render figure experiments as terminal charts")
		parallel   = fs.Int("parallel", 0, "scenario workers (0 = GOMAXPROCS); results are identical at any value")
		shards     = fs.Int("shards", 0, "event-kernel shards per scenario (0/1 = single heap); results are identical at any value")
		timeout    = fs.Duration("timeout", 0, "cancel in-flight sweeps after this wall time (0 = none)")
		progress   = fs.Bool("progress", false, "report per-point progress on stderr")
		auditEvery = fs.Int("audit", 0, "verify runtime invariants every Nth event (0 = off, 1 = every event)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *runID == "" {
		fmt.Fprintln(stderr, "experiments: -run <id>|all or -list required")
		fs.Usage()
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := experiments.Options{
		Duration:      *duration,
		TraceDuration: *traceDur,
		Days:          *days,
		Seed:          *seed,
		Parallel:      *parallel,
		Shards:        *shards,
		Context:       ctx,
	}
	if *auditEvery > 0 {
		opt.Audit = &audit.Checker{EveryN: *auditEvery}
	}
	if *progress {
		opt.Sink = runner.SinkFunc(func(p runner.Progress) {
			if p.Point.Err != nil {
				fmt.Fprintf(stderr, "  [%d/%d] %s: %v\n", p.Done, p.Total, p.Point.Key, p.Point.Err)
				return
			}
			fmt.Fprintf(stderr, "  [%d/%d] %s: %.1fs wall, %.0f events/s\n",
				p.Done, p.Total, p.Point.Key, p.Point.Wall.Seconds(), p.EventsPerSec())
		})
	}
	if *loads != "" {
		for _, part := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(stderr, "experiments: bad load %q: %v\n", part, err)
				return 2
			}
			opt.Loads = append(opt.Loads, v)
		}
	}

	var todo []experiments.Experiment
	if *runID == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*runID, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "experiments: unknown experiment %q (try -list)\n", id)
				return 2
			}
			todo = append(todo, e)
		}
	}

	wall := clock.Wall{}
	for _, e := range todo {
		start := wall.Now()
		rep, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Fprintf(stdout, "=== %s — %s ===\n", rep.ID, rep.Title)
		fmt.Fprintf(stdout, "paper: %s\n\n", rep.PaperClaim)
		for _, lt := range rep.Tables {
			if lt.Label != "" {
				fmt.Fprintln(stdout, lt.Label)
			}
			fmt.Fprintln(stdout, lt.Table.String())
			if *out != "" {
				if err := writeCSV(*out, rep.ID, lt); err != nil {
					fmt.Fprintf(stderr, "experiments: %v\n", err)
					return 1
				}
			}
		}
		if *plotFlag {
			for _, ch := range rep.Charts {
				fmt.Fprintln(stdout, ch.Render())
			}
		}
		fmt.Fprintf(stdout, "(%s in %.1fs)\n\n", rep.ID, wall.Since(start).Seconds())
	}
	return 0
}

func writeCSV(dir, id string, lt experiments.LabeledTable) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, strings.Trim(lt.Label, "() "))
	name := id + ".csv"
	if slug != "" {
		name = id + "-" + slug + ".csv"
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(lt.Table.CSV()), 0o644)
}
