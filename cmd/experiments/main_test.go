package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeList: -list must enumerate the full experiment registry.
func TestSmokeList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Count(strings.TrimRight(out.String(), "\n"), "\n") + 1
	if lines != 21 {
		t.Errorf("-list printed %d experiments, want 21:\n%s", lines, out.String())
	}
}

// TestSmokeRunOne runs one reduced-scale experiment with the audit on
// and CSV output, checking the report frame and the CSV file.
func TestSmokeRunOne(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (reduced-scale) experiment")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{
		"-run", "fig7", "-duration", "400", "-loads", "100",
		"-audit", "64", "-out", dir,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, frag := range []string{"=== fig7", "paper:", "(fig7 in"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "fig7*.csv")); len(m) == 0 {
		t.Errorf("-out wrote no fig7 CSV into %s", dir)
	}
}

// TestSmokeBadFlags: usage errors must exit 2 with a diagnostic.
func TestSmokeBadFlags(t *testing.T) {
	cases := [][]string{
		{},
		{"-run", "no-such-experiment"},
		{"-run", "fig7", "-loads", "100,banana"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
		if errb.Len() == 0 {
			t.Errorf("run(%v) printed no diagnostic", args)
		}
	}
}
