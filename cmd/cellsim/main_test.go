package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmokeShortRun drives the CLI end to end in-process: a short
// audited scenario must exit 0 and print the headline result lines.
func TestSmokeShortRun(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-duration", "400", "-load", "100", "-cells", "6",
		"-audit", "16", "-per-cell=false",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, frag := range []string{"policy=AC3", "requests=", "PCB=", "PHD="} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

// TestSmokeReps exercises the replication path through the runner.
func TestSmokeReps(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-duration", "300", "-load", "100", "-cells", "6",
		"-reps", "2", "-parallel", "2", "-audit", "32",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "mean over 2 reps") {
		t.Errorf("reps output missing mean line:\n%s", out.String())
	}
}

// TestSmokePerCellTable checks the per-cell table renders.
func TestSmokePerCellTable(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-duration", "300", "-load", "100", "-cells", "5", "-policy", "none"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Cell") {
		t.Errorf("per-cell table missing:\n%s", out.String())
	}
}

// TestSmokeBadFlags: usage errors must exit 2 without running anything.
func TestSmokeBadFlags(t *testing.T) {
	cases := [][]string{
		{"-policy", "nope"},
		{"-topology", "nope"},
		{"-direction", "sideways"},
		{"-speed", "fast"},
		{"-schedule", "sometimes"},
		{"-backbone", "bus"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) exit %d, want 2 (stderr: %s)", args, code, errb.String())
		}
		if errb.Len() == 0 {
			t.Errorf("run(%v) printed no diagnostic", args)
		}
	}
}

// TestSmokeFaults runs the in-process fault model: exchanges must fail,
// the engines must degrade per the guard fallback, the invariant audit
// must stay clean, and the counters must reach the summary line.
func TestSmokeFaults(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-duration", "500", "-load", "150", "-cells", "5",
		"-fault-drop", "0.2", "-fault-fallback", "guard",
		"-audit", "16", "-per-cell=false"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "signaling faults: ") {
		t.Fatalf("fault summary missing:\n%s", s)
	}
	if strings.Contains(s, "signaling faults: 0 exchanges failed") {
		t.Errorf("20%% drop rate injected no faults:\n%s", s)
	}
}

// TestSmokeFaultFlagValidation: a bad fallback name must exit 2.
func TestSmokeFaultFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-fault-drop", "0.1", "-fault-fallback", "hope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
	}
}
