// Command cellsim runs one cellular-network simulation scenario from
// flags and prints system-wide and per-cell results.
//
// Examples:
//
//	cellsim -policy ac3 -load 300 -rvo 1.0 -speed high -duration 20000
//	cellsim -policy static -reserve 10 -load 150 -rvo 0.5
//	cellsim -topology line -cells 10 -direction forward -policy ac1
//	cellsim -topology hex -rows 4 -cols 5 -policy ac3 -persistence 0.8
//	cellsim -schedule daily -days 2 -retry -policy ac3
//	cellsim -policy ac3 -adaptive-video-min 1 -soft-overlap 5 -margin 8
//	cellsim -policy exp-dwell -dwell-mean 35 -dwell-window 30
//	cellsim -policy mob-spec -spec-horizon 5
//	cellsim -backbone star -bs-link 40 -msc-link 120
//	cellsim -policy ac3 -reps 8 -parallel 4 -timeout 5m
//
// With -reps N the scenario is replicated with seeds seed..seed+N-1 on
// -parallel workers (internal/runner) and per-replication plus mean
// results are printed; -timeout cancels in-flight runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/predict"
	"cellqos/internal/runner"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
	"cellqos/internal/wired"
)

func main() {
	var (
		policyName  = flag.String("policy", "ac3", "admission policy: ac1|ac2|ac3|static|none")
		reserve     = flag.Int("reserve", 10, "static reservation G in BUs (policy=static)")
		load        = flag.Float64("load", 150, "offered load per cell in BUs (Eq. 7)")
		rvo         = flag.Float64("rvo", 1.0, "voice ratio R_vo (voice=1 BU, video=4 BU)")
		speed       = flag.String("speed", "high", "mobility: high (80-120 km/h) | low (40-60 km/h) | min,max")
		topoName    = flag.String("topology", "ring", "topology: ring|line|hex")
		cells       = flag.Int("cells", 10, "number of cells (ring/line)")
		rows        = flag.Int("rows", 4, "hex rows")
		cols        = flag.Int("cols", 5, "hex cols")
		wrap        = flag.Bool("wrap", true, "wrap hex grid into a torus")
		persistence = flag.Float64("persistence", 0.8, "hex walk direction persistence")
		direction   = flag.String("direction", "random", "1-D travel direction: random|forward|backward")
		capacity    = flag.Int("capacity", 100, "cell link capacity in BUs")
		target      = flag.Float64("target", 0.01, "P_HD target")
		duration    = flag.Float64("duration", 20000, "simulated seconds (constant schedule)")
		schedName   = flag.String("schedule", "constant", "traffic schedule: constant|daily")
		days        = flag.Int("days", 2, "days to simulate (schedule=daily)")
		retry       = flag.Bool("retry", false, "enable the §5.3 blocked-request retry model")
		seed        = flag.Uint64("seed", 1, "RNG seed")
		perCell     = flag.Bool("per-cell", true, "print the per-cell table")
		reps        = flag.Int("reps", 1, "replications with seeds seed..seed+reps-1")
		parallel    = flag.Int("parallel", 0, "replication workers (0 = GOMAXPROCS)")
		timeout     = flag.Duration("timeout", 0, "cancel in-flight runs after this wall time (0 = none)")

		dwellMean   = flag.Float64("dwell-mean", 35, "exp-dwell baseline: assumed mean dwell τ (s)")
		dwellWindow = flag.Float64("dwell-window", 30, "exp-dwell baseline: fixed estimation window T (s)")
		specHorizon = flag.Int("spec-horizon", 2, "mob-spec baseline: pledge cells within this many hops")
		adaptiveMin = flag.Int("adaptive-video-min", 0, "adaptive QoS: video minimum in BUs (0 = rigid)")
		softOverlap = flag.Float64("soft-overlap", 0, "CDMA soft hand-off overlap window (s; 0 = off)")
		margin      = flag.Int("margin", 0, "CDMA soft-capacity hand-off margin in BUs")
		hints       = flag.Bool("hints", false, "ITS/GPS direction hints (§7)")
		backboneK   = flag.String("backbone", "", "wired backbone: star|mesh (empty = none)")
		bsLink      = flag.Int("bs-link", 200, "backbone: BS uplink capacity (BUs)")
		mscLink     = flag.Int("msc-link", 1000, "backbone: MSC/gateway or inter-BS link capacity (BUs)")
		anchor      = flag.Bool("anchor", false, "backbone: anchor-extend re-routing instead of full re-route")
	)
	flag.Parse()

	cfg := cellnet.PaperBase()
	cfg.Capacity = *capacity
	cfg.PHDTarget = *target
	cfg.StaticReserve = *reserve
	cfg.Seed = *seed

	switch strings.ToLower(*policyName) {
	case "ac1":
		cfg.Policy = core.AC1
	case "ac2":
		cfg.Policy = core.AC2
	case "ac3":
		cfg.Policy = core.AC3
	case "static":
		cfg.Policy = core.Static
	case "none":
		cfg.Policy = core.None
	case "exp-dwell":
		cfg.Policy = core.ExpDwell
		cfg.ExpDwellMean = *dwellMean
		cfg.ExpDwellWindow = *dwellWindow
	case "mob-spec":
		cfg.Policy = core.MobSpec
		cfg.MobSpecHorizon = *specHorizon
	default:
		fatalf("unknown policy %q", *policyName)
	}
	if *adaptiveMin > 0 {
		cfg.AdaptiveQoS = cellnet.AdaptiveQoSConfig{Enabled: true, VideoMinBUs: *adaptiveMin}
	}
	if *softOverlap > 0 {
		cfg.SoftHandOff = cellnet.SoftHandOffConfig{Enabled: true, OverlapSeconds: *softOverlap}
	}
	cfg.HandOffMargin = *margin
	cfg.DirectionHints = *hints

	var sr mobility.SpeedRange
	switch strings.ToLower(*speed) {
	case "high":
		sr = mobility.HighMobility
	case "low":
		sr = mobility.LowMobility
	default:
		if n, err := fmt.Sscanf(*speed, "%f,%f", &sr.MinKmh, &sr.MaxKmh); n != 2 || err != nil {
			fatalf("bad -speed %q (want high, low, or min,max)", *speed)
		}
	}

	var dir mobility.DirectionPolicy
	switch strings.ToLower(*direction) {
	case "random":
		dir = mobility.RandomDirection
	case "forward":
		dir = mobility.ForwardOnly
	case "backward":
		dir = mobility.BackwardOnly
	default:
		fatalf("bad -direction %q", *direction)
	}

	switch strings.ToLower(*topoName) {
	case "ring":
		cfg.Topology = topology.Ring(*cells)
		cfg.Mobility = &mobility.Linear{Top: cfg.Topology, DiameterKm: 1, Speed: sr, Direction: dir}
	case "line":
		cfg.Topology = topology.Line(*cells)
		cfg.Mobility = &mobility.Linear{Top: cfg.Topology, DiameterKm: 1, Speed: sr, Direction: dir}
	case "hex":
		cfg.Topology = topology.Hex(*rows, *cols, *wrap)
		cfg.Mobility = &mobility.HexWalk{Top: cfg.Topology, DiameterKm: 1, Speed: sr, Persistence: *persistence}
	default:
		fatalf("unknown topology %q", *topoName)
	}

	cfg.Mix = traffic.Mix{VoiceRatio: *rvo}
	end := *duration
	switch strings.ToLower(*schedName) {
	case "constant":
		cfg.Schedule = traffic.Constant{
			Lambda: traffic.RateForLoad(*load, cfg.Mix, cfg.MeanLifetime),
			MinKmh: sr.MinKmh, MaxKmh: sr.MaxKmh,
		}
	case "daily":
		cfg.Schedule = traffic.PaperDay(cfg.Mix, cfg.MeanLifetime)
		cfg.Estimation = predict.DailyConfig()
		end = float64(*days) * traffic.SecondsPerDay
	default:
		fatalf("unknown schedule %q", *schedName)
	}
	if *retry {
		cfg.Retry = traffic.PaperRetry
	}
	if *backboneK != "" {
		strategy := wired.FullReroute
		if *anchor {
			strategy = wired.AnchorExtend
		}
		switch strings.ToLower(*backboneK) {
		case "star":
			cfg.Backbone = wired.StarOfMSCs(cfg.Topology, (cfg.Topology.NumCells()+4)/5, *bsLink, *mscLink, strategy)
		case "mesh":
			cfg.Backbone = wired.MeshOfBSs(cfg.Topology, *mscLink, *bsLink, strategy)
		default:
			fatalf("unknown backbone %q", *backboneK)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	scen := runner.Scenario{Key: "cellsim", Config: cfg, Duration: end, Reps: *reps}
	r := &runner.Runner{Parallel: *parallel}
	points, err := r.Run(ctx, []runner.Scenario{scen})
	if err == nil {
		err = runner.FirstError(points)
	}
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("policy=%s topology=%s load=%.0f Rvo=%.2f speed=[%.0f,%.0f]km/h duration=%.0fs\n",
		cfg.Policy, cfg.Topology.Kind(), *load, *rvo, sr.MinKmh, sr.MaxKmh, end)

	if *reps > 1 {
		printReps(points, *seed)
		return
	}
	res := points[0].Result
	fmt.Printf("requests=%d blocked=%d hand-offs=%d dropped=%d completed=%d exited=%d\n",
		res.Total.Requested, res.Total.Blocked, res.Total.HandOffs, res.Total.Dropped,
		res.Total.Completed, res.Total.Exited)
	fmt.Printf("PCB=%s PHD=%s (target %.3g) Ncalc=%.3f avgBr=%.2f avgBu=%.2f exchanges=%d\n",
		stats.FormatProb(res.PCB), stats.FormatProb(res.PHD), *target,
		res.NCalc, res.AvgBr, res.AvgBu, res.Exchanges)
	if *adaptiveMin > 0 {
		fmt.Printf("adaptive QoS: avg degraded %.2f BU, %d downgrades, %d upgrades\n",
			res.AvgDegraded, res.QoSDowngrades, res.QoSUpgrades)
	}
	if *softOverlap > 0 {
		fmt.Printf("soft hand-off: %d saved in overlap, %d expired\n", res.SoftSaved, res.SoftExpired)
	}
	if cfg.Backbone != nil {
		fmt.Printf("backbone: %d blocked, %d dropped, %d re-routes, %d BUs in use\n",
			res.WiredBlocked, res.WiredDropped, res.WiredReroutes, res.WiredUsed)
	}

	if *perCell {
		tb := stats.NewTable("Cell", "PCB", "PHD", "Test", "Br", "Bu", "avgBr", "avgBu")
		for _, c := range res.Cells {
			tb.AddRowStrings(
				fmt.Sprintf("%d", c.ID+1),
				stats.FormatProb(c.PCB), stats.FormatProb(c.PHD),
				fmt.Sprintf("%.0f", c.Test), fmt.Sprintf("%.2f", c.Br),
				fmt.Sprintf("%d", c.Bu),
				fmt.Sprintf("%.2f", c.AvgBr), fmt.Sprintf("%.2f", c.AvgBu))
		}
		fmt.Println()
		fmt.Print(tb.String())
	}
}

// printReps prints per-replication results and their means.
func printReps(points []runner.PointResult, baseSeed uint64) {
	tb := stats.NewTable("seed", "PCB", "PHD", "Ncalc", "avgBr", "avgBu", "events", "wall(s)")
	var meanPCB, meanPHD float64
	var work time.Duration
	for _, p := range points {
		res := p.Result
		tb.AddRowStrings(
			fmt.Sprintf("%d", baseSeed+uint64(p.Rep)),
			stats.FormatProb(res.PCB), stats.FormatProb(res.PHD),
			fmt.Sprintf("%.3f", res.NCalc),
			fmt.Sprintf("%.2f", res.AvgBr), fmt.Sprintf("%.2f", res.AvgBu),
			fmt.Sprintf("%d", p.Events), fmt.Sprintf("%.1f", p.Wall.Seconds()))
		meanPCB += res.PCB
		meanPHD += res.PHD
		work += p.Wall
	}
	n := float64(len(points))
	fmt.Print(tb.String())
	fmt.Printf("mean over %d reps: PCB=%s PHD=%s (%.1f CPU-seconds of simulation)\n",
		len(points), stats.FormatProb(meanPCB/n), stats.FormatProb(meanPHD/n), work.Seconds())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cellsim: "+format+"\n", args...)
	os.Exit(2)
}
