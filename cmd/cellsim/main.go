// Command cellsim runs one cellular-network simulation scenario from
// flags and prints system-wide and per-cell results.
//
// Examples:
//
//	cellsim -policy ac3 -load 300 -rvo 1.0 -speed high -duration 20000
//	cellsim -policy static -reserve 10 -load 150 -rvo 0.5
//	cellsim -topology line -cells 10 -direction forward -policy ac1
//	cellsim -topology hex -rows 4 -cols 5 -policy ac3 -persistence 0.8
//	cellsim -schedule daily -days 2 -retry -policy ac3
//	cellsim -policy ac3 -adaptive-video-min 1 -soft-overlap 5 -margin 8
//	cellsim -policy exp-dwell -dwell-mean 35 -dwell-window 30
//	cellsim -policy mob-spec -spec-horizon 5
//	cellsim -backbone star -bs-link 40 -msc-link 120
//	cellsim -policy ac3 -reps 8 -parallel 4 -timeout 5m
//	cellsim -policy ac3 -audit 32
//	cellsim -topology hex -rows 8 -cols 8 -shards 4 -signaling-latency 0.25
//
// With -reps N the scenario is replicated with seeds seed..seed+N-1 on
// -parallel workers (internal/runner) and per-replication plus mean
// results are printed; -timeout cancels in-flight runs. With -audit N
// the runtime invariant checker (internal/audit) verifies bandwidth
// conservation on every Nth event and at the final snapshot; a
// violation aborts the run with a structured diagnostic.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cellqos/internal/audit"
	"cellqos/internal/cellnet"
	"cellqos/internal/core"
	"cellqos/internal/mobility"
	"cellqos/internal/predict"
	"cellqos/internal/runner"
	"cellqos/internal/stats"
	"cellqos/internal/topology"
	"cellqos/internal/traffic"
	"cellqos/internal/wired"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive the
// CLI in-process: args are the command-line arguments (without the
// program name) and the exit status is returned instead of calling
// os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cellsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		policyName  = fs.String("policy", "ac3", "admission policy name (see core.PolicyNames: ac1|ac2|ac3|static|none|exp-dwell|mob-spec|guard-dynamic|multi-class|token-bucket)")
		reserve     = fs.Int("reserve", 10, "static reservation G in BUs (policy=static)")
		load        = fs.Float64("load", 150, "offered load per cell in BUs (Eq. 7)")
		rvo         = fs.Float64("rvo", 1.0, "voice ratio R_vo (voice=1 BU, video=4 BU)")
		speed       = fs.String("speed", "high", "mobility: high (80-120 km/h) | low (40-60 km/h) | min,max")
		topoName    = fs.String("topology", "ring", "topology: ring|line|hex")
		cells       = fs.Int("cells", 10, "number of cells (ring/line)")
		rows        = fs.Int("rows", 4, "hex rows")
		cols        = fs.Int("cols", 5, "hex cols")
		wrap        = fs.Bool("wrap", true, "wrap hex grid into a torus")
		persistence = fs.Float64("persistence", 0.8, "hex walk direction persistence")
		direction   = fs.String("direction", "random", "1-D travel direction: random|forward|backward")
		capacity    = fs.Int("capacity", 100, "cell link capacity in BUs")
		target      = fs.Float64("target", 0.01, "P_HD target")
		duration    = fs.Float64("duration", 20000, "simulated seconds (constant schedule)")
		schedName   = fs.String("schedule", "constant", "traffic schedule: constant|daily")
		days        = fs.Int("days", 2, "days to simulate (schedule=daily)")
		retry       = fs.Bool("retry", false, "enable the §5.3 blocked-request retry model")
		seed        = fs.Uint64("seed", 1, "RNG seed")
		perCell     = fs.Bool("per-cell", true, "print the per-cell table")
		reps        = fs.Int("reps", 1, "replications with seeds seed..seed+reps-1")
		parallel    = fs.Int("parallel", 0, "replication workers (0 = GOMAXPROCS)")
		timeout     = fs.Duration("timeout", 0, "cancel in-flight runs after this wall time (0 = none)")
		auditEvery  = fs.Int("audit", 0, "verify runtime invariants every Nth event (0 = off, 1 = every event)")

		dwellMean   = fs.Float64("dwell-mean", 35, "exp-dwell baseline: assumed mean dwell τ (s)")
		dwellWindow = fs.Float64("dwell-window", 30, "exp-dwell baseline: fixed estimation window T (s)")
		specHorizon = fs.Int("spec-horizon", 2, "mob-spec baseline: pledge cells within this many hops")
		adaptiveMin = fs.Int("adaptive-video-min", 0, "adaptive QoS: video minimum in BUs (0 = rigid)")
		softOverlap = fs.Float64("soft-overlap", 0, "CDMA soft hand-off overlap window (s; 0 = off)")
		margin      = fs.Int("margin", 0, "CDMA soft-capacity hand-off margin in BUs")
		hints       = fs.Bool("hints", false, "ITS/GPS direction hints (§7)")
		backboneK   = fs.String("backbone", "", "wired backbone: star|mesh (empty = none)")
		bsLink      = fs.Int("bs-link", 200, "backbone: BS uplink capacity (BUs)")
		mscLink     = fs.Int("msc-link", 1000, "backbone: MSC/gateway or inter-BS link capacity (BUs)")
		anchor      = fs.Bool("anchor", false, "backbone: anchor-extend re-routing instead of full re-route")

		faultDrop     = fs.Float64("fault-drop", 0, "probability each peer information exchange fails (0 = healthy signaling)")
		faultFallback = fs.String("fault-fallback", "decay", "degradation policy for unreachable neighbors: decay|guard|zero")

		shards     = fs.Int("shards", 0, "event-kernel shards (0/1 = single heap; >1 partitions the cells)")
		sigLatency = fs.Float64("signaling-latency", 0, "one-way inter-BS signaling latency in seconds (0 = synchronous; >0 enables the async model)")
		exchange   = fs.Float64("exchange-period", 0, "async model: peer state exchange period in seconds (default 1)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	errf := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "cellsim: "+format+"\n", a...)
		return 2
	}

	cfg := cellnet.PaperBase()
	cfg.Capacity = *capacity
	cfg.PHDTarget = *target
	cfg.StaticReserve = *reserve
	cfg.Seed = *seed
	if *auditEvery > 0 {
		cfg.Audit = &audit.Checker{EveryN: *auditEvery}
	}
	if *faultDrop > 0 {
		var fb core.Fallback
		switch strings.ToLower(*faultFallback) {
		case "decay":
			fb = core.Fallback{Mode: core.FallbackDecay}
		case "guard":
			fb = core.Fallback{Mode: core.FallbackGuard}
		case "zero":
			fb = core.Fallback{Mode: core.FallbackZero}
		default:
			return errf("unknown -fault-fallback %q", *faultFallback)
		}
		cfg.Faults = cellnet.FaultConfig{Enabled: true, Drop: *faultDrop, Fallback: fb}
	}

	// The policy registry resolves names case-insensitively, so every
	// spelling the old enum switch accepted still parses — and rivals
	// registered by other packages are selectable with no CLI change.
	pol, err := core.PolicyByName(*policyName)
	if err != nil {
		return errf("%v", err)
	}
	cfg.Admission = pol
	switch pol.Name() {
	case "exp-dwell":
		cfg.ExpDwellMean = *dwellMean
		cfg.ExpDwellWindow = *dwellWindow
	case "mob-spec":
		cfg.MobSpecHorizon = *specHorizon
	}
	if *adaptiveMin > 0 {
		cfg.AdaptiveQoS = cellnet.AdaptiveQoSConfig{Enabled: true, VideoMinBUs: *adaptiveMin}
	}
	if *softOverlap > 0 {
		cfg.SoftHandOff = cellnet.SoftHandOffConfig{Enabled: true, OverlapSeconds: *softOverlap}
	}
	cfg.HandOffMargin = *margin
	cfg.DirectionHints = *hints
	cfg.Sharding = cellnet.ShardingConfig{
		Shards:           *shards,
		SignalingLatency: *sigLatency,
		ExchangePeriod:   *exchange,
	}

	var sr mobility.SpeedRange
	switch strings.ToLower(*speed) {
	case "high":
		sr = mobility.HighMobility
	case "low":
		sr = mobility.LowMobility
	default:
		if n, err := fmt.Sscanf(*speed, "%f,%f", &sr.MinKmh, &sr.MaxKmh); n != 2 || err != nil {
			return errf("bad -speed %q (want high, low, or min,max)", *speed)
		}
	}

	var dir mobility.DirectionPolicy
	switch strings.ToLower(*direction) {
	case "random":
		dir = mobility.RandomDirection
	case "forward":
		dir = mobility.ForwardOnly
	case "backward":
		dir = mobility.BackwardOnly
	default:
		return errf("bad -direction %q", *direction)
	}

	switch strings.ToLower(*topoName) {
	case "ring":
		cfg.Topology = topology.Ring(*cells)
		cfg.Mobility = &mobility.Linear{Top: cfg.Topology, DiameterKm: 1, Speed: sr, Direction: dir}
	case "line":
		cfg.Topology = topology.Line(*cells)
		cfg.Mobility = &mobility.Linear{Top: cfg.Topology, DiameterKm: 1, Speed: sr, Direction: dir}
	case "hex":
		cfg.Topology = topology.Hex(*rows, *cols, *wrap)
		cfg.Mobility = &mobility.HexWalk{Top: cfg.Topology, DiameterKm: 1, Speed: sr, Persistence: *persistence}
	default:
		return errf("unknown topology %q", *topoName)
	}

	cfg.Mix = traffic.Mix{VoiceRatio: *rvo}
	end := *duration
	switch strings.ToLower(*schedName) {
	case "constant":
		cfg.Schedule = traffic.Constant{
			Lambda: traffic.RateForLoad(*load, cfg.Mix, cfg.MeanLifetime),
			MinKmh: sr.MinKmh, MaxKmh: sr.MaxKmh,
		}
	case "daily":
		cfg.Schedule = traffic.PaperDay(cfg.Mix, cfg.MeanLifetime)
		cfg.Estimation = predict.DailyConfig()
		end = float64(*days) * traffic.SecondsPerDay
	default:
		return errf("unknown schedule %q", *schedName)
	}
	if *retry {
		cfg.Retry = traffic.PaperRetry
	}
	if *backboneK != "" {
		strategy := wired.FullReroute
		if *anchor {
			strategy = wired.AnchorExtend
		}
		switch strings.ToLower(*backboneK) {
		case "star":
			cfg.Backbone = wired.StarOfMSCs(cfg.Topology, (cfg.Topology.NumCells()+4)/5, *bsLink, *mscLink, strategy)
		case "mesh":
			cfg.Backbone = wired.MeshOfBSs(cfg.Topology, *mscLink, *bsLink, strategy)
		default:
			return errf("unknown backbone %q", *backboneK)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	scen := runner.Scenario{Key: "cellsim", Config: cfg, Duration: end, Reps: *reps}
	r := &runner.Runner{Parallel: *parallel}
	points, err := r.Run(ctx, []runner.Scenario{scen})
	if err == nil {
		err = runner.FirstError(points)
	}
	if err != nil {
		fmt.Fprintf(stderr, "cellsim: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "policy=%s topology=%s load=%.0f Rvo=%.2f speed=[%.0f,%.0f]km/h duration=%.0fs\n",
		pol.Name(), cfg.Topology.Kind(), *load, *rvo, sr.MinKmh, sr.MaxKmh, end)

	if *reps > 1 {
		printReps(stdout, points, *seed)
		return 0
	}
	res := points[0].Result
	fmt.Fprintf(stdout, "requests=%d blocked=%d hand-offs=%d dropped=%d completed=%d exited=%d\n",
		res.Total.Requested, res.Total.Blocked, res.Total.HandOffs, res.Total.Dropped,
		res.Total.Completed, res.Total.Exited)
	fmt.Fprintf(stdout, "PCB=%s PHD=%s (target %.3g) Ncalc=%.3f avgBr=%.2f avgBu=%.2f exchanges=%d\n",
		stats.FormatProb(res.PCB), stats.FormatProb(res.PHD), *target,
		res.NCalc, res.AvgBr, res.AvgBu, res.Exchanges)
	if *adaptiveMin > 0 {
		fmt.Fprintf(stdout, "adaptive QoS: avg degraded %.2f BU, %d downgrades, %d upgrades\n",
			res.AvgDegraded, res.QoSDowngrades, res.QoSUpgrades)
	}
	if *softOverlap > 0 {
		fmt.Fprintf(stdout, "soft hand-off: %d saved in overlap, %d expired\n", res.SoftSaved, res.SoftExpired)
	}
	if *faultDrop > 0 {
		fmt.Fprintf(stdout, "signaling faults: %d exchanges failed, %d degraded B_r calcs, %d degraded admissions\n",
			res.PeerFaults, res.DegradedBrCalcs, res.DegradedAdmissions)
	}
	if cfg.Backbone != nil {
		fmt.Fprintf(stdout, "backbone: %d blocked, %d dropped, %d re-routes, %d BUs in use\n",
			res.WiredBlocked, res.WiredDropped, res.WiredReroutes, res.WiredUsed)
	}

	if *perCell {
		tb := stats.NewTable("Cell", "PCB", "PHD", "Test", "Br", "Bu", "avgBr", "avgBu")
		for _, c := range res.Cells {
			tb.AddRowStrings(
				fmt.Sprintf("%d", c.ID+1),
				stats.FormatProb(c.PCB), stats.FormatProb(c.PHD),
				fmt.Sprintf("%.0f", c.Test), fmt.Sprintf("%.2f", c.Br),
				fmt.Sprintf("%d", c.Bu),
				fmt.Sprintf("%.2f", c.AvgBr), fmt.Sprintf("%.2f", c.AvgBu))
		}
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, tb.String())
	}
	return 0
}

// printReps prints per-replication results and their means.
func printReps(w io.Writer, points []runner.PointResult, baseSeed uint64) {
	tb := stats.NewTable("seed", "PCB", "PHD", "Ncalc", "avgBr", "avgBu", "events", "wall(s)")
	var meanPCB, meanPHD float64
	var work time.Duration
	for _, p := range points {
		res := p.Result
		tb.AddRowStrings(
			fmt.Sprintf("%d", baseSeed+uint64(p.Rep)),
			stats.FormatProb(res.PCB), stats.FormatProb(res.PHD),
			fmt.Sprintf("%.3f", res.NCalc),
			fmt.Sprintf("%.2f", res.AvgBr), fmt.Sprintf("%.2f", res.AvgBu),
			fmt.Sprintf("%d", p.Events), fmt.Sprintf("%.1f", p.Wall.Seconds()))
		meanPCB += res.PCB
		meanPHD += res.PHD
		work += p.Wall
	}
	n := float64(len(points))
	fmt.Fprint(w, tb.String())
	fmt.Fprintf(w, "mean over %d reps: PCB=%s PHD=%s (%.1f CPU-seconds of simulation)\n",
		len(points), stats.FormatProb(meanPCB/n), stats.FormatProb(meanPHD/n), work.Seconds())
}
