// Command cellqos-vet is the multichecker for the repo's custom
// go/analysis suite (internal/analysis/suite): nodeterm, maporderflow,
// peervalue, deprecated, genepoch, policycontract, shardsafe,
// crashorder and allowstale — the machine-checked forms of the
// determinism, degradation, API, policy-contract and crash-ordering
// invariants DESIGN.md §12 documents.
//
// It runs in two modes:
//
//   - vettool: `go vet -vettool=$(pwd)/bin/cellqos-vet ./...` — the go
//     command drives it per package through the unitchecker protocol
//     (a JSON .cfg file naming sources and export data), giving
//     incremental caching for free. The protocol (-V=full
//     fingerprinting, -flags discovery, the Config schema) is
//     reimplemented here on the standard library because x/tools is
//     unavailable in the hermetic build.
//
//   - standalone: `cellqos-vet [-tests=false] [-json] [-baseline file]
//     [patterns...]` — loads packages itself via `go list -export`
//     (internal/analysis.Load) and sweeps them in one process. This is
//     what `make lint` uses (the baseline ratchet needs the whole
//     module's findings in one process), plus the suite's repo-wide
//     regression test and ad-hoc runs.
//
// With -baseline, findings fingerprinted in the file are suppressed
// and only new ones fail the run; stale entries (fingerprints no
// longer reported) are advisory on stderr. -update-baseline rewrites
// the file from the current findings (`make lint-update-baseline`).
// Fingerprints hash analyzer, category, root-relative file, message
// and an occurrence index — no line numbers, so gofmt-only moves do
// not churn the baseline.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
// Diagnostics honor the //cellqos:allow escape hatch (see DESIGN.md
// §12 for the annotation policy).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cellqos/internal/analysis"
	"cellqos/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go command probes its vettool before the first real run:
	// `-V=full` for the build-cache fingerprint, `-flags` for the
	// tool's flag schema. Both must answer on stdout and exit 0.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		return printVersion()
	}
	if len(args) == 1 && args[0] == "-flags" {
		return printFlags()
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0])
	}
	return standalone(args)
}

// printVersion implements -V=full: "<name> version devel buildID=<sum>"
// so the go command can fingerprint the tool binary for vet caching.
func printVersion() int {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
	return 0
}

// printFlags implements -flags: the JSON flag schema the go command
// reads to validate pass-through vet flags.
func printFlags() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range suite.Analyzers() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: "enable only " + a.Name + ": " + a.Doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// vetConfig is the unitchecker protocol's per-package configuration,
// field-compatible with the JSON the go command writes for
// golang.org/x/tools/go/analysis/unitchecker.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the one package described by a .cfg file.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cellqos-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// This suite exports no facts, but the go command expects the vetx
	// output file to exist to cache the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only pass for a dependency: nothing to do
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if real, ok := cfg.ImportMap[path]; ok {
			path = real
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	info := analysis.NewTypesInfo()
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := tconf.Check(cleanImportPath(cfg.ImportPath), fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cellqos-vet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	pkg := &analysis.Package{Path: tpkg.Path(), Fset: fset, Files: files, Types: tpkg, TypesInfo: info}
	findings, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, suite.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
		return 1
	}
	return report(findings)
}

// cleanImportPath strips go list's test-variant suffix.
func cleanImportPath(ip string) string {
	if i := strings.Index(ip, " ["); i >= 0 {
		return ip[:i]
	}
	return ip
}

// standalone loads packages with the internal loader and sweeps them.
func standalone(args []string) int {
	fs := flag.NewFlagSet("cellqos-vet", flag.ContinueOnError)
	tests := fs.Bool("tests", true, "also analyze _test.go files (test-augmented package variants)")
	dir := fs.String("dir", ".", "module directory to resolve patterns in")
	jsonOut := fs.Bool("json", false, "emit findings as JSON instead of vet-style lines")
	baselinePath := fs.String("baseline", "", "suppress findings fingerprinted in this baseline file; fail only on new ones")
	update := fs.Bool("update-baseline", false, "rewrite the -baseline file from the current findings and exit 0")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
		return 1
	}
	pkgs, err := analysis.Load(*dir, *tests, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
		return 1
	}
	findings, err := analysis.RunAnalyzers(pkgs, suite.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
		return 1
	}

	if *update {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "cellqos-vet: -update-baseline requires -baseline <file>")
			return 1
		}
		b := analysis.NewBaseline(findings, root)
		if err := b.Write(*baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "cellqos-vet: wrote %s (%d findings)\n", *baselinePath, len(b.Findings))
		return 0
	}
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
			return 1
		}
		fresh, known, stale := b.Filter(findings, root)
		if len(known) > 0 {
			fmt.Fprintf(os.Stderr, "cellqos-vet: %d finding(s) suppressed by baseline %s\n", len(known), *baselinePath)
		}
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "cellqos-vet: stale baseline entry %s (%s at %s:%d): finding no longer reported — run `make lint-update-baseline`\n",
				e.Fingerprint, e.Analyzer, e.File, e.Line)
		}
		findings = fresh
	}

	if *jsonOut {
		if err := emitJSON(os.Stdout, findings, root); err != nil {
			fmt.Fprintf(os.Stderr, "cellqos-vet: %v\n", err)
			return 1
		}
		if len(findings) > 0 {
			return 2
		}
		return 0
	}
	return report(findings)
}

// jsonFinding is the machine-readable finding schema (`-json`). File is
// module-root-relative with forward slashes, and the fingerprint is the
// same position-independent hash `-baseline` files store, so CI
// artifacts diff cleanly against baselines and across gofmt-only moves.
type jsonFinding struct {
	Analyzer    string `json:"analyzer"`
	Category    string `json:"category"`
	File        string `json:"file"`
	Line        int    `json:"line"`
	Column      int    `json:"column"`
	EndLine     int    `json:"endLine,omitempty"`
	EndColumn   int    `json:"endColumn,omitempty"`
	Message     string `json:"message"`
	Fingerprint string `json:"fingerprint"`
}

// emitJSON writes the findings as an indented JSON array.
func emitJSON(w io.Writer, findings []analysis.Finding, root string) error {
	prints := analysis.Fingerprints(findings, root)
	out := make([]jsonFinding, 0, len(findings))
	for i, f := range findings {
		out = append(out, jsonFinding{
			Analyzer:    f.Analyzer,
			Category:    f.Category,
			File:        analysis.RelFile(root, f.Posn.Filename),
			Line:        f.Posn.Line,
			Column:      f.Posn.Column,
			EndLine:     f.End.Line,
			EndColumn:   f.End.Column,
			Message:     f.Message,
			Fingerprint: prints[i],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(out)
}

// report prints findings vet-style to stderr; exit 2 if any.
func report(findings []analysis.Finding) int {
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
