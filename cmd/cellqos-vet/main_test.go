package main

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"cellqos/internal/analysis"
)

// TestEmitJSON pins the machine-readable schema: lower-case field
// names, root-relative slash paths, end positions, and fingerprints
// that match the baseline layer's.
func TestEmitJSON(t *testing.T) {
	findings := []analysis.Finding{
		{
			Analyzer: "shardsafe",
			Category: "lookahead",
			Posn:     token.Position{Filename: "/repo/internal/sim/a.go", Line: 10, Column: 3},
			End:      token.Position{Filename: "/repo/internal/sim/a.go", Line: 10, Column: 20},
			Message:  "Send time is not provably now+lookahead",
		},
		{
			Analyzer: "crashorder",
			Category: "writefile",
			Posn:     token.Position{Filename: "/repo/internal/service/b.go", Line: 4, Column: 1},
			Message:  "os.WriteFile onto a checkpoint path",
		},
	}
	var sb strings.Builder
	if err := emitJSON(&sb, findings, "/repo"); err != nil {
		t.Fatal(err)
	}
	var got []jsonFinding
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2", len(got))
	}
	want := jsonFinding{
		Analyzer:    "shardsafe",
		Category:    "lookahead",
		File:        "internal/sim/a.go",
		Line:        10,
		Column:      3,
		EndLine:     10,
		EndColumn:   20,
		Message:     "Send time is not provably now+lookahead",
		Fingerprint: analysis.Fingerprint("shardsafe", "lookahead", "internal/sim/a.go", "Send time is not provably now+lookahead", 0),
	}
	if got[0] != want {
		t.Errorf("finding[0] = %+v, want %+v", got[0], want)
	}
	if got[1].EndLine != 0 || got[1].EndColumn != 0 {
		t.Errorf("finding[1] has end position %d:%d, want omitted", got[1].EndLine, got[1].EndColumn)
	}
	// The raw JSON must use the lower-case keys CI tooling greps for.
	for _, key := range []string{`"analyzer"`, `"category"`, `"file"`, `"fingerprint"`, `"endLine"`} {
		if !strings.Contains(sb.String(), key) {
			t.Errorf("JSON output missing key %s:\n%s", key, sb.String())
		}
	}
}
