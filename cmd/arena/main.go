// Command arena runs the admission-policy arena: every registered
// admission scheme against the same controlled workload grid, ranked on
// hand-off dropping, new-call blocking and utilization, with the
// pre-registered hypothesis verdicts appended.
//
// Usage:
//
//	arena                        # pinned default grid (matches results/arena/arena.txt)
//	arena -list                  # print the contender roster and exit
//	arena -policies AC3,static   # restrict the roster
//	arena -seeds 10 -loads 150,300 -rvo 0.5,1 -duration 2000
//	arena -out results/arena/arena.txt -audit 64
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cellqos/internal/arena"
	"cellqos/internal/audit"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("arena", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "print the contender roster and exit")
		duration = fs.Float64("duration", 0, "simulated seconds per point (0 = pinned default)")
		seeds    = fs.Int("seeds", 0, "seeds per grid cell (0 = pinned default)")
		seed     = fs.Uint64("seed", 0, "base seed (0 = pinned default)")
		loads    = fs.String("loads", "", "comma-separated offered loads (empty = pinned default)")
		rvo      = fs.String("rvo", "", "comma-separated voice ratios (empty = pinned default)")
		policies = fs.String("policies", "", "comma-separated contender names (empty = full roster)")
		parallel = fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
		auditN   = fs.Int("audit", 0, "verify runtime invariants every N events (0 = off)")
		out      = fs.String("out", "", "also write the report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, name := range arena.Roster() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	opt := arena.Options{
		Duration: *duration,
		Seeds:    *seeds,
		Seed:     *seed,
		Parallel: *parallel,
	}
	var err error
	if opt.Loads, err = parseFloats(*loads); err != nil {
		fmt.Fprintf(stderr, "arena: -loads: %v\n", err)
		return 2
	}
	if opt.VoiceRatios, err = parseFloats(*rvo); err != nil {
		fmt.Fprintf(stderr, "arena: -rvo: %v\n", err)
		return 2
	}
	if *policies != "" {
		opt.Policies = strings.Split(*policies, ",")
	}
	if *auditN > 0 {
		opt.Audit = &audit.Checker{EveryN: *auditN}
	}
	res, err := arena.Run(opt)
	if err != nil {
		fmt.Fprintf(stderr, "arena: %v\n", err)
		return 1
	}
	report := res.Report()
	if _, err := stdout.Write(report); err != nil {
		fmt.Fprintf(stderr, "arena: %v\n", err)
		return 1
	}
	if *out != "" {
		if err := os.WriteFile(*out, report, 0o644); err != nil {
			fmt.Fprintf(stderr, "arena: %v\n", err)
			return 1
		}
	}
	return 0
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	vals := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}
